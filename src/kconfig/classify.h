// Counting and classification reports over configs (Figs. 3 and 4).
#ifndef SRC_KCONFIG_CLASSIFY_H_
#define SRC_KCONFIG_CLASSIFY_H_

#include <array>
#include <cstddef>
#include <map>
#include <string>

#include "src/kconfig/config.h"

namespace lupine::kconfig {

// Per-directory option counts for one config (one series of Fig. 3).
std::array<size_t, kNumSourceDirs> CountByDir(const Config& config, const OptionDb& db);

// Per-directory totals for the whole tree (Fig. 3 "total" series).
std::array<size_t, kNumSourceDirs> TreeTotalsByDir(const OptionDb& db);

// Fig. 4: classification of the options removed when deriving lupine-base
// from the microVM config.
struct RemovalBreakdown {
  size_t microvm_total = 0;   // 833
  size_t base_retained = 0;   // 283
  // Application-specific subcategories.
  size_t app_network = 0;
  size_t app_filesystem = 0;
  size_t app_syscall = 0;
  size_t app_compression = 0;
  size_t app_crypto = 0;
  size_t app_debug = 0;
  size_t app_other = 0;
  // Unnecessary-for-unikernels categories.
  size_t multi_process = 0;
  size_t hardware = 0;

  size_t app_specific_total() const {
    return app_network + app_filesystem + app_syscall + app_compression + app_crypto +
           app_debug + app_other;
  }
  size_t removed_total() const { return app_specific_total() + multi_process + hardware; }
};

RemovalBreakdown ClassifyRemovals(const OptionDb& db);

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_CLASSIFY_H_

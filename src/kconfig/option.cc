#include "src/kconfig/option.h"

namespace lupine::kconfig {

const char* SourceDirName(SourceDir dir) {
  switch (dir) {
    case SourceDir::kDrivers: return "drivers";
    case SourceDir::kArch: return "arch";
    case SourceDir::kSound: return "sound";
    case SourceDir::kNet: return "net";
    case SourceDir::kFs: return "fs";
    case SourceDir::kLib: return "lib";
    case SourceDir::kKernel: return "kernel";
    case SourceDir::kInit: return "init";
    case SourceDir::kCrypto: return "crypto";
    case SourceDir::kMm: return "mm";
    case SourceDir::kSecurity: return "security";
    case SourceDir::kBlock: return "block";
    case SourceDir::kVirt: return "virt";
    case SourceDir::kSamples: return "samples";
    case SourceDir::kUsr: return "usr";
  }
  return "?";
}

const char* OptionClassName(OptionClass c) {
  switch (c) {
    case OptionClass::kBase: return "lupine-base";
    case OptionClass::kAppNetwork: return "app:network";
    case OptionClass::kAppFilesystem: return "app:filesystem";
    case OptionClass::kAppSyscall: return "app:syscall";
    case OptionClass::kAppCompression: return "app:compression";
    case OptionClass::kAppCrypto: return "app:crypto";
    case OptionClass::kAppDebug: return "app:debugging";
    case OptionClass::kAppOther: return "app:other";
    case OptionClass::kMultiProcess: return "multiple-processes";
    case OptionClass::kHardware: return "hardware-management";
    case OptionClass::kNotSelected: return "not-selected";
  }
  return "?";
}

bool IsApplicationSpecific(OptionClass c) {
  switch (c) {
    case OptionClass::kAppNetwork:
    case OptionClass::kAppFilesystem:
    case OptionClass::kAppSyscall:
    case OptionClass::kAppCompression:
    case OptionClass::kAppCrypto:
    case OptionClass::kAppDebug:
    case OptionClass::kAppOther:
      return true;
    default:
      return false;
  }
}

bool IsRemovedFromMicrovm(OptionClass c) {
  return IsApplicationSpecific(c) || c == OptionClass::kMultiProcess ||
         c == OptionClass::kHardware;
}

}  // namespace lupine::kconfig

// Dependency resolution over a Config, against an OptionDb.
//
// Models the parts of Kconfig semantics the experiments rely on:
//   * `select` edges are followed transitively (enabling IPV6 pulls INET/NET),
//   * `depends on` edges are auto-enabled (our equivalent of a user answering
//     the prompts `make oldconfig` would raise),
//   * `conflicts` (e.g. KERNEL_MODE_LINUX vs PARAVIRT) fail resolution,
//   * unknown options and un-patched KML fail resolution.
//
// Performance: per-option dependency closures (BFS discovery order over
// interned ids) are memoized per database and shared by every Resolver
// instance, so enabling the same option twice never re-walks the
// depends_on/select edge lists. When no closure member is already enabled in
// the target config the memoized order is replayed directly (the common
// fleet-build case); otherwise resolution falls back to the pruned BFS walk,
// which is also the reference path used when memoization is disabled. Both
// paths produce byte-identical ResolveReports and error messages.
#ifndef SRC_KCONFIG_RESOLVER_H_
#define SRC_KCONFIG_RESOLVER_H_

#include <string>
#include <vector>

#include "src/kconfig/config.h"
#include "src/util/result.h"

namespace lupine::kconfig {

struct ResolveReport {
  // Options auto-enabled to satisfy depends_on/selects, in discovery order.
  std::vector<std::string> auto_enabled;
};

class Resolver {
 public:
  explicit Resolver(const OptionDb& db, bool memoize = true)
      : db_(db), memoize_(memoize) {}

  // Enables `option` in `config` together with its dependency closure.
  Result<ResolveReport> Enable(Config& config, const std::string& option) const;

  // Validates an existing config: every enabled option exists, has its
  // dependencies enabled, and no conflicting pair is enabled.
  Status Validate(const Config& config) const;

  // Process-wide kill switch for closure memoization (benchmarks and
  // equivalence tests); instance and global flags must both be on.
  static void SetMemoizationEnabled(bool enabled);
  static bool MemoizationEnabled();

 private:
  Result<ResolveReport> EnableWalk(Config& config, OptionId root) const;

  const OptionDb& db_;
  bool memoize_;
};

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_RESOLVER_H_

// Dependency resolution over a Config, against an OptionDb.
//
// Models the parts of Kconfig semantics the experiments rely on:
//   * `select` edges are followed transitively (enabling IPV6 pulls INET/NET),
//   * `depends on` edges are auto-enabled (our equivalent of a user answering
//     the prompts `make oldconfig` would raise),
//   * `conflicts` (e.g. KERNEL_MODE_LINUX vs PARAVIRT) fail resolution,
//   * unknown options and un-patched KML fail resolution.
#ifndef SRC_KCONFIG_RESOLVER_H_
#define SRC_KCONFIG_RESOLVER_H_

#include <string>
#include <vector>

#include "src/kconfig/config.h"
#include "src/util/result.h"

namespace lupine::kconfig {

struct ResolveReport {
  // Options auto-enabled to satisfy depends_on/selects, in discovery order.
  std::vector<std::string> auto_enabled;
};

class Resolver {
 public:
  explicit Resolver(const OptionDb& db) : db_(db) {}

  // Enables `option` in `config` together with its dependency closure.
  Result<ResolveReport> Enable(Config& config, const std::string& option) const;

  // Validates an existing config: every enabled option exists, has its
  // dependencies enabled, and no conflicting pair is enabled.
  Status Validate(const Config& config) const;

 private:
  Status CheckLegal(const Config& config, const std::string& option) const;

  const OptionDb& db_;
};

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_RESOLVER_H_

// The option database: every configuration option of the (synthetic)
// Linux 4.0 tree, indexed by name, directory and taxonomy class.
#ifndef SRC_KCONFIG_OPTION_DB_H_
#define SRC_KCONFIG_OPTION_DB_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kconfig/option.h"

namespace lupine::kconfig {

class OptionDb {
 public:
  OptionDb() = default;

  // Registers an option; returns false (and ignores it) on duplicate name.
  bool Add(OptionInfo info);

  const OptionInfo* Find(const std::string& name) const;
  bool Contains(const std::string& name) const { return Find(name) != nullptr; }

  size_t size() const { return options_.size(); }
  const std::vector<OptionInfo>& options() const { return options_; }

  size_t CountInDir(SourceDir dir) const;
  size_t CountInClass(OptionClass c) const;
  std::vector<const OptionInfo*> AllInDir(SourceDir dir) const;
  std::vector<const OptionInfo*> AllInClass(OptionClass c) const;

  // The synthetic Linux 4.0 option tree (15,953 options; see linux_db.cc for
  // how named behaviour-relevant options and per-directory filler compose).
  static const OptionDb& Linux40();

 private:
  std::vector<OptionInfo> options_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_OPTION_DB_H_

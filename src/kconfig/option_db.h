// The option database: every configuration option of the (synthetic)
// Linux 4.0 tree, indexed by name, interned id, directory and taxonomy class.
#ifndef SRC_KCONFIG_OPTION_DB_H_
#define SRC_KCONFIG_OPTION_DB_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kconfig/interning.h"
#include "src/kconfig/option.h"

namespace lupine::kconfig {

class OptionDb {
 public:
  OptionDb();
  // Copies get a fresh serial so memoized resolver state (keyed by serial)
  // is never shared between independent databases; moves keep it.
  OptionDb(const OptionDb& other);
  OptionDb& operator=(const OptionDb& other);
  OptionDb(OptionDb&&) = default;
  OptionDb& operator=(OptionDb&&) = default;

  // Registers an option; returns false (and ignores it) on duplicate name.
  // [[nodiscard]] because a dropped registration silently loses the option's
  // size/dependency data — callers that rely on uniqueness by construction
  // must assert or (void)-cast explicitly.
  [[nodiscard]] bool Add(OptionInfo info);

  const OptionInfo* Find(const std::string& name) const;
  // O(1)-ish lookup by interned id (one hash over a 4-byte key, no string
  // hashing). Returns nullptr for ids not registered in this database.
  const OptionInfo* FindById(OptionId id) const;
  bool Contains(const std::string& name) const { return Find(name) != nullptr; }

  // Interned adjacency of one option, precomputed at Add time so the
  // resolver's closure walks never touch option-name strings.
  struct OptionEdges {
    OptionId self = kNoOption;
    std::vector<OptionId> depends_on;
    std::vector<OptionId> selects;
    std::vector<OptionId> conflicts;
  };
  const OptionEdges* EdgesById(OptionId id) const;

  size_t size() const { return options_.size(); }
  const std::vector<OptionInfo>& options() const { return options_; }

  // Identity of this database instance; keys the resolver's per-database
  // closure cache. Unique per logical database (fresh on copy).
  uint64_t serial() const { return serial_; }

  size_t CountInDir(SourceDir dir) const;
  size_t CountInClass(OptionClass c) const;
  std::vector<const OptionInfo*> AllInDir(SourceDir dir) const;
  std::vector<const OptionInfo*> AllInClass(OptionClass c) const;

  // The synthetic Linux 4.0 option tree (15,953 options; see linux_db.cc for
  // how named behaviour-relevant options and per-directory filler compose).
  static const OptionDb& Linux40();

 private:
  static uint64_t NextSerial();

  std::vector<OptionInfo> options_;
  std::vector<OptionEdges> edges_;                  // Parallel to options_.
  std::unordered_map<std::string, size_t> index_;   // Name -> options_ index.
  std::unordered_map<OptionId, size_t> id_index_;   // Interned id -> index.
  uint64_t serial_;
};

}  // namespace lupine::kconfig

#endif  // SRC_KCONFIG_OPTION_DB_H_

// Canonical names of the behaviour-relevant configuration options.
//
// Using constants rather than string literals keeps the kconfig presets, the
// kernel-feature derivation (src/kbuild/features.*), the guest syscall gating
// and the config-search error mapping in lockstep.
#ifndef SRC_KCONFIG_OPTION_NAMES_H_
#define SRC_KCONFIG_OPTION_NAMES_H_

namespace lupine::kconfig::names {

// --- Syscall-gating options (Table 1) -------------------------------------
inline constexpr char kAdviseSyscalls[] = "ADVISE_SYSCALLS";
inline constexpr char kAio[] = "AIO";
inline constexpr char kBpfSyscall[] = "BPF_SYSCALL";
inline constexpr char kEpoll[] = "EPOLL";
inline constexpr char kEventfd[] = "EVENTFD";
inline constexpr char kFanotify[] = "FANOTIFY";
inline constexpr char kFhandle[] = "FHANDLE";
inline constexpr char kFileLocking[] = "FILE_LOCKING";
inline constexpr char kFutex[] = "FUTEX";
inline constexpr char kInotifyUser[] = "INOTIFY_USER";
inline constexpr char kSignalfd[] = "SIGNALFD";
inline constexpr char kTimerfd[] = "TIMERFD";

// --- Other application-specific options ------------------------------------
inline constexpr char kUnix[] = "UNIX";               // AF_UNIX sockets.
inline constexpr char kIpv6[] = "IPV6";
inline constexpr char kPacket[] = "PACKET";           // AF_PACKET sockets.
inline constexpr char kTmpfs[] = "TMPFS";
inline constexpr char kProcSysctl[] = "PROC_SYSCTL";  // /proc/sys.
inline constexpr char kHugetlbfs[] = "HUGETLBFS";

// --- Multi-process / security-domain options --------------------------------
inline constexpr char kSysvipc[] = "SYSVIPC";
inline constexpr char kPosixMqueue[] = "POSIX_MQUEUE";
inline constexpr char kCgroups[] = "CGROUPS";
inline constexpr char kCpusets[] = "CPUSETS";
inline constexpr char kNamespaces[] = "NAMESPACES";
inline constexpr char kUtsNs[] = "UTS_NS";
inline constexpr char kPidNs[] = "PID_NS";
inline constexpr char kNetNs[] = "NET_NS";
inline constexpr char kIpcNs[] = "IPC_NS";
inline constexpr char kUserNs[] = "USER_NS";
inline constexpr char kModules[] = "MODULES";
inline constexpr char kAudit[] = "AUDIT";
inline constexpr char kSeccomp[] = "SECCOMP";
inline constexpr char kSmp[] = "SMP";
inline constexpr char kNuma[] = "NUMA";
inline constexpr char kSecurity[] = "SECURITY";
inline constexpr char kSelinux[] = "SECURITY_SELINUX";
// Umbrella for the syscall/kernel-path hardening whose cost the paper cites
// (retpolines & friends; "oftentimes more than 100%" [52]); on in microVM,
// off in every Lupine kernel.
inline constexpr char kMitigations[] = "MITIGATIONS";

// --- Hardware management ----------------------------------------------------
inline constexpr char kAcpi[] = "ACPI";
inline constexpr char kPm[] = "PM";
inline constexpr char kCpuFreq[] = "CPU_FREQ";
inline constexpr char kHotplugCpu[] = "HOTPLUG_CPU";
inline constexpr char kThermal[] = "THERMAL";
inline constexpr char kWatchdog[] = "WATCHDOG";

// --- lupine-base infrastructure ----------------------------------------------
inline constexpr char kTty[] = "TTY";
inline constexpr char kSerial8250[] = "SERIAL_8250";
inline constexpr char kUnix98Ptys[] = "UNIX98_PTYS";
inline constexpr char kPrintk[] = "PRINTK";
inline constexpr char kBinfmtElf[] = "BINFMT_ELF";
inline constexpr char kBinfmtScript[] = "BINFMT_SCRIPT";
inline constexpr char kShmem[] = "SHMEM";
inline constexpr char kNet[] = "NET";
inline constexpr char kInet[] = "INET";
inline constexpr char kVirtio[] = "VIRTIO";
inline constexpr char kVirtioMmio[] = "VIRTIO_MMIO";
inline constexpr char kVirtioNet[] = "VIRTIO_NET";
inline constexpr char kVirtioBlk[] = "VIRTIO_BLK";
inline constexpr char kExt2Fs[] = "EXT2_FS";
inline constexpr char kProcFs[] = "PROC_FS";
inline constexpr char kSysfs[] = "SYSFS";
inline constexpr char kDevtmpfs[] = "DEVTMPFS";
inline constexpr char kBlkDev[] = "BLK_DEV";
inline constexpr char kBlkDevLoop[] = "BLK_DEV_LOOP";
inline constexpr char kParavirt[] = "PARAVIRT";
inline constexpr char kHighResTimers[] = "HIGH_RES_TIMERS";
inline constexpr char kPosixTimers[] = "POSIX_TIMERS";
inline constexpr char kMultiuser[] = "MULTIUSER";
inline constexpr char kSlub[] = "SLUB";
inline constexpr char kVsyscallEmulation[] = "X86_VSYSCALL_EMULATION";
// Valued option: seconds before a panicked kernel reboots itself. 0 halts
// forever (stock Linux default), negative reboots immediately (the posture a
// supervised unikernel wants — the monitor restarts it).
inline constexpr char kPanicTimeout[] = "PANIC_TIMEOUT";

// --- Space/performance trade-off options toggled by the -tiny variant -------
inline constexpr char kBaseFull[] = "BASE_FULL";
inline constexpr char kKallsyms[] = "KALLSYMS";
inline constexpr char kBug[] = "BUG";
inline constexpr char kElfCore[] = "ELF_CORE";
inline constexpr char kSlubDebug[] = "SLUB_DEBUG";
inline constexpr char kVmEventCounters[] = "VM_EVENT_COUNTERS";
inline constexpr char kDebugBugverbose[] = "DEBUG_BUGVERBOSE";
inline constexpr char kPrintkTime[] = "PRINTK_TIME";
inline constexpr char kMagicSysrq[] = "MAGIC_SYSRQ";

// --- Options outside the microVM config (ablations / patches) ----------------
inline constexpr char kKml[] = "KERNEL_MODE_LINUX";     // From the KML patch.
inline constexpr char kKpti[] = "PAGE_TABLE_ISOLATION"; // Post-Meltdown KPTI.
inline constexpr char kPci[] = "PCI";                   // Not used by Firecracker.

}  // namespace lupine::kconfig::names

#endif  // SRC_KCONFIG_OPTION_NAMES_H_

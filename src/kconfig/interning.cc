#include "src/kconfig/interning.h"

#include <mutex>

namespace lupine::kconfig {

OptionInterner& OptionInterner::Global() {
  // Leaked on purpose: ids (and NameOf references) must outlive every static
  // Config/OptionDb destructor regardless of destruction order.
  static OptionInterner* interner = new OptionInterner();
  return *interner;
}

OptionId OptionInterner::Intern(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;  // Raced with another interner.
  }
  OptionId id = static_cast<OptionId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

OptionId OptionInterner::Find(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoOption : it->second;
}

const std::string& OptionInterner::NameOf(OptionId id) const {
  std::shared_lock lock(mu_);
  return names_[id];
}

size_t OptionInterner::size() const {
  std::shared_lock lock(mu_);
  return names_.size();
}

}  // namespace lupine::kconfig

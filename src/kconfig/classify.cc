#include "src/kconfig/classify.h"

namespace lupine::kconfig {

std::array<size_t, kNumSourceDirs> CountByDir(const Config& config, const OptionDb& db) {
  std::array<size_t, kNumSourceDirs> counts{};
  for (OptionId id : config.EnabledIds()) {
    const OptionInfo* info = db.FindById(id);
    if (info != nullptr) {
      ++counts[static_cast<int>(info->dir)];
    }
  }
  return counts;
}

std::array<size_t, kNumSourceDirs> TreeTotalsByDir(const OptionDb& db) {
  std::array<size_t, kNumSourceDirs> counts{};
  for (const auto& option : db.options()) {
    ++counts[static_cast<int>(option.dir)];
  }
  return counts;
}

RemovalBreakdown ClassifyRemovals(const OptionDb& db) {
  RemovalBreakdown b;
  for (const auto& option : db.options()) {
    switch (option.option_class) {
      case OptionClass::kBase: ++b.base_retained; break;
      case OptionClass::kAppNetwork: ++b.app_network; break;
      case OptionClass::kAppFilesystem: ++b.app_filesystem; break;
      case OptionClass::kAppSyscall: ++b.app_syscall; break;
      case OptionClass::kAppCompression: ++b.app_compression; break;
      case OptionClass::kAppCrypto: ++b.app_crypto; break;
      case OptionClass::kAppDebug: ++b.app_debug; break;
      case OptionClass::kAppOther: ++b.app_other; break;
      case OptionClass::kMultiProcess: ++b.multi_process; break;
      case OptionClass::kHardware: ++b.hardware; break;
      case OptionClass::kNotSelected: break;
    }
  }
  b.microvm_total = b.base_retained + b.removed_total();
  return b;
}

}  // namespace lupine::kconfig

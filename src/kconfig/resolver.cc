#include "src/kconfig/resolver.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/kconfig/option_names.h"

namespace lupine::kconfig {
namespace {

std::atomic<bool> g_memoization_enabled{true};

const std::string& NameOf(OptionId id) { return OptionInterner::Global().NameOf(id); }

OptionId KmlId() {
  static const OptionId id = OptionInterner::Global().Intern(names::kKml);
  return id;
}

Status UnknownOptionError(OptionId id) {
  return Status(Err::kNoEnt, "unknown config option CONFIG_" + NameOf(id));
}

Status UnpatchedKmlError() {
  return Status(Err::kInval,
                "CONFIG_KERNEL_MODE_LINUX requires the KML patch to be applied to the tree");
}

Status ConflictError(OptionId option, OptionId conflict) {
  return Status(Err::kInval, "CONFIG_" + NameOf(option) + " conflicts with enabled CONFIG_" +
                                 NameOf(conflict));
}

// The config-independent part of one option's dependency closure: BFS
// discovery order (root first) over depends_on-then-selects edges, with a
// membership bitset for O(words) overlap tests against a Config. A walk that
// reaches an unregistered option records the failure in `status` and
// truncates `order` at that point — exactly where the live walk would stop.
// Conflict and KML legality are config-dependent and checked at replay time.
struct Closure {
  std::vector<OptionId> order;
  std::vector<uint64_t> bits;
  Status status = Status::Ok();
};

std::shared_ptr<const Closure> BuildClosure(const OptionDb& db, OptionId root) {
  auto closure = std::make_shared<Closure>();
  std::deque<OptionId> queue = {root};
  while (!queue.empty()) {
    OptionId id = queue.front();
    queue.pop_front();
    if (bits::Test(closure->bits, id)) {
      continue;
    }
    const OptionDb::OptionEdges* edges = db.EdgesById(id);
    if (edges == nullptr) {
      closure->status = UnknownOptionError(id);
      break;
    }
    bits::Set(closure->bits, id);
    closure->order.push_back(id);
    for (OptionId dep : edges->depends_on) {
      queue.push_back(dep);
    }
    for (OptionId sel : edges->selects) {
      queue.push_back(sel);
    }
  }
  return closure;
}

// Per-database closure cache, keyed by the database serial so destroyed
// databases can never alias a live one. Entries are invalidated wholesale
// when the database grows (Add after first resolution).
struct DbClosureCache {
  std::shared_mutex mu;
  size_t db_size = 0;
  std::unordered_map<OptionId, std::shared_ptr<const Closure>> closures;
};

DbClosureCache& CacheFor(const OptionDb& db) {
  static std::mutex mu;
  static auto* caches = new std::unordered_map<uint64_t, std::unique_ptr<DbClosureCache>>();
  std::lock_guard lock(mu);
  auto& slot = (*caches)[db.serial()];
  if (slot == nullptr) {
    slot = std::make_unique<DbClosureCache>();
  }
  return *slot;
}

std::shared_ptr<const Closure> GetClosure(const OptionDb& db, OptionId root) {
  DbClosureCache& cache = CacheFor(db);
  {
    std::shared_lock lock(cache.mu);
    if (cache.db_size == db.size()) {
      auto it = cache.closures.find(root);
      if (it != cache.closures.end()) {
        return it->second;
      }
    }
  }
  std::shared_ptr<const Closure> closure = BuildClosure(db, root);
  std::unique_lock lock(cache.mu);
  if (cache.db_size != db.size()) {
    cache.closures.clear();
    cache.db_size = db.size();
  }
  cache.closures.emplace(root, closure);
  return closure;
}

}  // namespace

void Resolver::SetMemoizationEnabled(bool enabled) {
  g_memoization_enabled.store(enabled, std::memory_order_relaxed);
}

bool Resolver::MemoizationEnabled() {
  return g_memoization_enabled.load(std::memory_order_relaxed);
}

Result<ResolveReport> Resolver::Enable(Config& config, const std::string& option) const {
  OptionId root = OptionInterner::Global().Intern(option);
  if (!memoize_ || !MemoizationEnabled()) {
    return EnableWalk(config, root);
  }
  std::shared_ptr<const Closure> closure = GetClosure(db_, root);
  if (bits::Intersects(closure->bits, config.enabled_bits())) {
    // Some closure member is already enabled: the walk prunes at it (and
    // does not expand its edges), which the memoized order cannot express.
    return EnableWalk(config, root);
  }

  // Replay: no member is pre-enabled, so the live BFS would discover exactly
  // `order`. Per-node legality checks still run in discovery order against
  // config ∪ {members applied so far}, preserving first-error semantics.
  std::vector<uint64_t> applied(closure->bits.size(), 0);
  for (OptionId id : closure->order) {
    if (id == KmlId() && !config.kml_patch_applied()) {
      return UnpatchedKmlError();
    }
    const OptionDb::OptionEdges* edges = db_.EdgesById(id);
    for (OptionId conflict : edges->conflicts) {
      if (config.IsEnabledId(conflict) || bits::Test(applied, conflict)) {
        return ConflictError(id, conflict);
      }
    }
    bits::Set(applied, id);
  }
  if (!closure->status.ok()) {
    return closure->status;  // Unknown option mid-closure.
  }

  ResolveReport report;
  report.auto_enabled.reserve(closure->order.size() - 1);
  for (size_t i = 0; i < closure->order.size(); ++i) {
    config.EnableId(closure->order[i]);
    if (i > 0) {
      report.auto_enabled.push_back(NameOf(closure->order[i]));
    }
  }
  return report;
}

Result<ResolveReport> Resolver::EnableWalk(Config& config, OptionId root) const {
  ResolveReport report;
  std::deque<OptionId> queue = {root};
  // Work on a copy so a conflict deep in the closure leaves `config` intact
  // (cheap now: a Config copy is a pair of small bitsets).
  Config scratch = config;

  while (!queue.empty()) {
    OptionId id = queue.front();
    queue.pop_front();
    if (scratch.IsEnabledId(id)) {
      continue;
    }
    const OptionDb::OptionEdges* edges = db_.EdgesById(id);
    if (edges == nullptr) {
      return UnknownOptionError(id);
    }
    if (id == KmlId() && !scratch.kml_patch_applied()) {
      return UnpatchedKmlError();
    }
    for (OptionId conflict : edges->conflicts) {
      if (scratch.IsEnabledId(conflict)) {
        return ConflictError(id, conflict);
      }
    }
    scratch.EnableId(id);
    if (id != root) {
      report.auto_enabled.push_back(NameOf(id));
    }
    for (OptionId dep : edges->depends_on) {
      queue.push_back(dep);
    }
    for (OptionId sel : edges->selects) {
      queue.push_back(sel);
    }
  }

  config = std::move(scratch);
  return report;
}

Status Resolver::Validate(const Config& config) const {
  OptionId modules = OptionInterner::Global().Intern(names::kModules);
  // Lexicographic order (not id order) so the first-reported violation
  // matches the original string-keyed implementation byte for byte.
  std::vector<OptionId> ids = config.EnabledIds();
  std::sort(ids.begin(), ids.end(),
            [](OptionId a, OptionId b) { return NameOf(a) < NameOf(b); });
  for (OptionId id : ids) {
    const OptionDb::OptionEdges* edges = db_.EdgesById(id);
    if (edges == nullptr) {
      return UnknownOptionError(id);
    }
    if (config.ValueOfId(id) == "m" && !config.IsEnabledId(modules)) {
      return Status(Err::kInval, "CONFIG_" + NameOf(id) +
                                     "=m requires CONFIG_MODULES (loadable module support)");
    }
    if (id == KmlId() && !config.kml_patch_applied()) {
      return Status(Err::kInval, "CONFIG_KERNEL_MODE_LINUX enabled without the KML patch");
    }
    for (OptionId dep : edges->depends_on) {
      if (!config.IsEnabledId(dep)) {
        return Status(Err::kInval, "CONFIG_" + NameOf(id) + " requires CONFIG_" + NameOf(dep) +
                                       " which is not enabled");
      }
    }
    for (OptionId conflict : edges->conflicts) {
      if (config.IsEnabledId(conflict)) {
        return ConflictError(id, conflict);
      }
    }
  }
  return Status::Ok();
}

}  // namespace lupine::kconfig

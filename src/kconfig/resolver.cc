#include "src/kconfig/resolver.h"

#include <deque>

#include "src/kconfig/option_names.h"

namespace lupine::kconfig {

Status Resolver::CheckLegal(const Config& config, const std::string& option) const {
  const OptionInfo* info = db_.Find(option);
  if (info == nullptr) {
    return Status(Err::kNoEnt, "unknown config option CONFIG_" + option);
  }
  if (option == names::kKml && !config.kml_patch_applied()) {
    return Status(Err::kInval,
                  "CONFIG_KERNEL_MODE_LINUX requires the KML patch to be applied to the tree");
  }
  for (const auto& conflict : info->conflicts) {
    if (config.IsEnabled(conflict)) {
      return Status(Err::kInval,
                    "CONFIG_" + option + " conflicts with enabled CONFIG_" + conflict);
    }
  }
  return Status::Ok();
}

Result<ResolveReport> Resolver::Enable(Config& config, const std::string& option) const {
  ResolveReport report;
  std::deque<std::string> queue = {option};
  // Work on a copy so a conflict deep in the closure leaves `config` intact.
  Config scratch = config;

  while (!queue.empty()) {
    std::string name = queue.front();
    queue.pop_front();
    if (scratch.IsEnabled(name)) {
      continue;
    }
    if (Status s = CheckLegal(scratch, name); !s.ok()) {
      return s;
    }
    scratch.Enable(name);
    if (name != option) {
      report.auto_enabled.push_back(name);
    }
    const OptionInfo* info = db_.Find(name);
    for (const auto& dep : info->depends_on) {
      queue.push_back(dep);
    }
    for (const auto& sel : info->selects) {
      queue.push_back(sel);
    }
  }

  config = std::move(scratch);
  return report;
}

Status Resolver::Validate(const Config& config) const {
  for (const auto& name : config.EnabledOptions()) {
    const OptionInfo* info = db_.Find(name);
    if (info == nullptr) {
      return Status(Err::kNoEnt, "unknown config option CONFIG_" + name);
    }
    if (config.GetValue(name) == "m" && !config.IsEnabled(names::kModules)) {
      return Status(Err::kInval,
                    "CONFIG_" + name + "=m requires CONFIG_MODULES (loadable module support)");
    }
    if (name == names::kKml && !config.kml_patch_applied()) {
      return Status(Err::kInval, "CONFIG_KERNEL_MODE_LINUX enabled without the KML patch");
    }
    for (const auto& dep : info->depends_on) {
      if (!config.IsEnabled(dep)) {
        return Status(Err::kInval,
                      "CONFIG_" + name + " requires CONFIG_" + dep + " which is not enabled");
      }
    }
    for (const auto& conflict : info->conflicts) {
      if (config.IsEnabled(conflict)) {
        return Status(Err::kInval,
                      "CONFIG_" + name + " conflicts with enabled CONFIG_" + conflict);
      }
    }
  }
  return Status::Ok();
}

}  // namespace lupine::kconfig

file(REMOVE_RECURSE
  "CMakeFiles/build_your_own_unikernel.dir/build_your_own_unikernel.cpp.o"
  "CMakeFiles/build_your_own_unikernel.dir/build_your_own_unikernel.cpp.o.d"
  "build_your_own_unikernel"
  "build_your_own_unikernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_your_own_unikernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

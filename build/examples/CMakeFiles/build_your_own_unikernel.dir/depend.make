# Empty dependencies file for build_your_own_unikernel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/graceful_degradation.dir/graceful_degradation.cpp.o"
  "CMakeFiles/graceful_degradation.dir/graceful_degradation.cpp.o.d"
  "graceful_degradation"
  "graceful_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graceful_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for graceful_degradation.
# This may be replaced when dependencies are built.

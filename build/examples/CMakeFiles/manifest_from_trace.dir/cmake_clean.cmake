file(REMOVE_RECURSE
  "CMakeFiles/manifest_from_trace.dir/manifest_from_trace.cpp.o"
  "CMakeFiles/manifest_from_trace.dir/manifest_from_trace.cpp.o.d"
  "manifest_from_trace"
  "manifest_from_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manifest_from_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for manifest_from_trace.
# This may be replaced when dependencies are built.

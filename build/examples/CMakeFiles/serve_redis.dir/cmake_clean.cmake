file(REMOVE_RECURSE
  "CMakeFiles/serve_redis.dir/serve_redis.cpp.o"
  "CMakeFiles/serve_redis.dir/serve_redis.cpp.o.d"
  "serve_redis"
  "serve_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for serve_redis.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guestos/console.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/console.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/console.cc.o.d"
  "/root/repo/src/guestos/cost_model.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/cost_model.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/cost_model.cc.o.d"
  "/root/repo/src/guestos/futex.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/futex.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/futex.cc.o.d"
  "/root/repo/src/guestos/kernel.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/kernel.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/kernel.cc.o.d"
  "/root/repo/src/guestos/loader.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/loader.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/loader.cc.o.d"
  "/root/repo/src/guestos/mem.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/mem.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/mem.cc.o.d"
  "/root/repo/src/guestos/net.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/net.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/net.cc.o.d"
  "/root/repo/src/guestos/rootfs.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/rootfs.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/rootfs.cc.o.d"
  "/root/repo/src/guestos/sched.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/sched.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/sched.cc.o.d"
  "/root/repo/src/guestos/syscall_core.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_core.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_core.cc.o.d"
  "/root/repo/src/guestos/syscall_exec.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_exec.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_exec.cc.o.d"
  "/root/repo/src/guestos/syscall_fs.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_fs.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_fs.cc.o.d"
  "/root/repo/src/guestos/syscall_ipc.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_ipc.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_ipc.cc.o.d"
  "/root/repo/src/guestos/syscall_net.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_net.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/syscall_net.cc.o.d"
  "/root/repo/src/guestos/task.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/task.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/task.cc.o.d"
  "/root/repo/src/guestos/vfs.cc" "src/guestos/CMakeFiles/lupine_guestos.dir/vfs.cc.o" "gcc" "src/guestos/CMakeFiles/lupine_guestos.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kbuild/CMakeFiles/lupine_kbuild.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kconfig/CMakeFiles/lupine_kconfig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblupine_guestos.a"
)

# Empty dependencies file for lupine_guestos.
# This may be replaced when dependencies are built.

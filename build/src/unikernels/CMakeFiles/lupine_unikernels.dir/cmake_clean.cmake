file(REMOVE_RECURSE
  "CMakeFiles/lupine_unikernels.dir/linux_system.cc.o"
  "CMakeFiles/lupine_unikernels.dir/linux_system.cc.o.d"
  "CMakeFiles/lupine_unikernels.dir/unikernel_models.cc.o"
  "CMakeFiles/lupine_unikernels.dir/unikernel_models.cc.o.d"
  "liblupine_unikernels.a"
  "liblupine_unikernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupine_unikernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lupine_unikernels.
# This may be replaced when dependencies are built.

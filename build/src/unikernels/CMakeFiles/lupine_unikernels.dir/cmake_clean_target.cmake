file(REMOVE_RECURSE
  "liblupine_unikernels.a"
)

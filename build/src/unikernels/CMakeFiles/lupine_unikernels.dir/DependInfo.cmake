
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unikernels/linux_system.cc" "src/unikernels/CMakeFiles/lupine_unikernels.dir/linux_system.cc.o" "gcc" "src/unikernels/CMakeFiles/lupine_unikernels.dir/linux_system.cc.o.d"
  "/root/repo/src/unikernels/unikernel_models.cc" "src/unikernels/CMakeFiles/lupine_unikernels.dir/unikernel_models.cc.o" "gcc" "src/unikernels/CMakeFiles/lupine_unikernels.dir/unikernel_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/lupine_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lupine_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/lupine_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/lupine_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/kbuild/CMakeFiles/lupine_kbuild.dir/DependInfo.cmake"
  "/root/repo/build/src/kconfig/CMakeFiles/lupine_kconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/src/unikernels
# Build directory: /root/repo/build/src/unikernels
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "liblupine_apps.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lupine_apps.dir/builtin.cc.o"
  "CMakeFiles/lupine_apps.dir/builtin.cc.o.d"
  "CMakeFiles/lupine_apps.dir/container.cc.o"
  "CMakeFiles/lupine_apps.dir/container.cc.o.d"
  "CMakeFiles/lupine_apps.dir/init_script.cc.o"
  "CMakeFiles/lupine_apps.dir/init_script.cc.o.d"
  "CMakeFiles/lupine_apps.dir/manifest.cc.o"
  "CMakeFiles/lupine_apps.dir/manifest.cc.o.d"
  "CMakeFiles/lupine_apps.dir/probes.cc.o"
  "CMakeFiles/lupine_apps.dir/probes.cc.o.d"
  "CMakeFiles/lupine_apps.dir/rootfs_builder.cc.o"
  "CMakeFiles/lupine_apps.dir/rootfs_builder.cc.o.d"
  "liblupine_apps.a"
  "liblupine_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupine_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

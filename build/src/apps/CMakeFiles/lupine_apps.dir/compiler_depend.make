# Empty compiler generated dependencies file for lupine_apps.
# This may be replaced when dependencies are built.

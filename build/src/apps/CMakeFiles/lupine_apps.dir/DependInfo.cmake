
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/builtin.cc" "src/apps/CMakeFiles/lupine_apps.dir/builtin.cc.o" "gcc" "src/apps/CMakeFiles/lupine_apps.dir/builtin.cc.o.d"
  "/root/repo/src/apps/container.cc" "src/apps/CMakeFiles/lupine_apps.dir/container.cc.o" "gcc" "src/apps/CMakeFiles/lupine_apps.dir/container.cc.o.d"
  "/root/repo/src/apps/init_script.cc" "src/apps/CMakeFiles/lupine_apps.dir/init_script.cc.o" "gcc" "src/apps/CMakeFiles/lupine_apps.dir/init_script.cc.o.d"
  "/root/repo/src/apps/manifest.cc" "src/apps/CMakeFiles/lupine_apps.dir/manifest.cc.o" "gcc" "src/apps/CMakeFiles/lupine_apps.dir/manifest.cc.o.d"
  "/root/repo/src/apps/probes.cc" "src/apps/CMakeFiles/lupine_apps.dir/probes.cc.o" "gcc" "src/apps/CMakeFiles/lupine_apps.dir/probes.cc.o.d"
  "/root/repo/src/apps/rootfs_builder.cc" "src/apps/CMakeFiles/lupine_apps.dir/rootfs_builder.cc.o" "gcc" "src/apps/CMakeFiles/lupine_apps.dir/rootfs_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guestos/CMakeFiles/lupine_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/kconfig/CMakeFiles/lupine_kconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/kbuild/CMakeFiles/lupine_kbuild.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblupine_kbuild.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kbuild/builder.cc" "src/kbuild/CMakeFiles/lupine_kbuild.dir/builder.cc.o" "gcc" "src/kbuild/CMakeFiles/lupine_kbuild.dir/builder.cc.o.d"
  "/root/repo/src/kbuild/features.cc" "src/kbuild/CMakeFiles/lupine_kbuild.dir/features.cc.o" "gcc" "src/kbuild/CMakeFiles/lupine_kbuild.dir/features.cc.o.d"
  "/root/repo/src/kbuild/syscalls.cc" "src/kbuild/CMakeFiles/lupine_kbuild.dir/syscalls.cc.o" "gcc" "src/kbuild/CMakeFiles/lupine_kbuild.dir/syscalls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kconfig/CMakeFiles/lupine_kconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

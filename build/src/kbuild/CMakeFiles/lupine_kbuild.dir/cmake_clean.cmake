file(REMOVE_RECURSE
  "CMakeFiles/lupine_kbuild.dir/builder.cc.o"
  "CMakeFiles/lupine_kbuild.dir/builder.cc.o.d"
  "CMakeFiles/lupine_kbuild.dir/features.cc.o"
  "CMakeFiles/lupine_kbuild.dir/features.cc.o.d"
  "CMakeFiles/lupine_kbuild.dir/syscalls.cc.o"
  "CMakeFiles/lupine_kbuild.dir/syscalls.cc.o.d"
  "liblupine_kbuild.a"
  "liblupine_kbuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupine_kbuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

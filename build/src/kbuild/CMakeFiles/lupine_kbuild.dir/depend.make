# Empty dependencies file for lupine_kbuild.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblupine_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lupine_workload.dir/app_bench.cc.o"
  "CMakeFiles/lupine_workload.dir/app_bench.cc.o.d"
  "CMakeFiles/lupine_workload.dir/control_procs.cc.o"
  "CMakeFiles/lupine_workload.dir/control_procs.cc.o.d"
  "CMakeFiles/lupine_workload.dir/kml_bench.cc.o"
  "CMakeFiles/lupine_workload.dir/kml_bench.cc.o.d"
  "CMakeFiles/lupine_workload.dir/lmbench.cc.o"
  "CMakeFiles/lupine_workload.dir/lmbench.cc.o.d"
  "CMakeFiles/lupine_workload.dir/perf_messaging.cc.o"
  "CMakeFiles/lupine_workload.dir/perf_messaging.cc.o.d"
  "CMakeFiles/lupine_workload.dir/spawn.cc.o"
  "CMakeFiles/lupine_workload.dir/spawn.cc.o.d"
  "CMakeFiles/lupine_workload.dir/stress.cc.o"
  "CMakeFiles/lupine_workload.dir/stress.cc.o.d"
  "liblupine_workload.a"
  "liblupine_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupine_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lupine_workload.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_bench.cc" "src/workload/CMakeFiles/lupine_workload.dir/app_bench.cc.o" "gcc" "src/workload/CMakeFiles/lupine_workload.dir/app_bench.cc.o.d"
  "/root/repo/src/workload/control_procs.cc" "src/workload/CMakeFiles/lupine_workload.dir/control_procs.cc.o" "gcc" "src/workload/CMakeFiles/lupine_workload.dir/control_procs.cc.o.d"
  "/root/repo/src/workload/kml_bench.cc" "src/workload/CMakeFiles/lupine_workload.dir/kml_bench.cc.o" "gcc" "src/workload/CMakeFiles/lupine_workload.dir/kml_bench.cc.o.d"
  "/root/repo/src/workload/lmbench.cc" "src/workload/CMakeFiles/lupine_workload.dir/lmbench.cc.o" "gcc" "src/workload/CMakeFiles/lupine_workload.dir/lmbench.cc.o.d"
  "/root/repo/src/workload/perf_messaging.cc" "src/workload/CMakeFiles/lupine_workload.dir/perf_messaging.cc.o" "gcc" "src/workload/CMakeFiles/lupine_workload.dir/perf_messaging.cc.o.d"
  "/root/repo/src/workload/spawn.cc" "src/workload/CMakeFiles/lupine_workload.dir/spawn.cc.o" "gcc" "src/workload/CMakeFiles/lupine_workload.dir/spawn.cc.o.d"
  "/root/repo/src/workload/stress.cc" "src/workload/CMakeFiles/lupine_workload.dir/stress.cc.o" "gcc" "src/workload/CMakeFiles/lupine_workload.dir/stress.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vmm/CMakeFiles/lupine_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/lupine_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/kbuild/CMakeFiles/lupine_kbuild.dir/DependInfo.cmake"
  "/root/repo/build/src/kconfig/CMakeFiles/lupine_kconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

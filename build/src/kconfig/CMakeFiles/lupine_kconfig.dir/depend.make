# Empty dependencies file for lupine_kconfig.
# This may be replaced when dependencies are built.

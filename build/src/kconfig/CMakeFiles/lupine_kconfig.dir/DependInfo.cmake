
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kconfig/classify.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/classify.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/classify.cc.o.d"
  "/root/repo/src/kconfig/config.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/config.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/config.cc.o.d"
  "/root/repo/src/kconfig/dotconfig.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/dotconfig.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/dotconfig.cc.o.d"
  "/root/repo/src/kconfig/kconfig_lang.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/kconfig_lang.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/kconfig_lang.cc.o.d"
  "/root/repo/src/kconfig/linux_db.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/linux_db.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/linux_db.cc.o.d"
  "/root/repo/src/kconfig/option.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/option.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/option.cc.o.d"
  "/root/repo/src/kconfig/option_db.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/option_db.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/option_db.cc.o.d"
  "/root/repo/src/kconfig/presets.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/presets.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/presets.cc.o.d"
  "/root/repo/src/kconfig/resolver.cc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/resolver.cc.o" "gcc" "src/kconfig/CMakeFiles/lupine_kconfig.dir/resolver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblupine_kconfig.a"
)

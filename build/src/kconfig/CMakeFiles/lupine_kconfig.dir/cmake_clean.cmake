file(REMOVE_RECURSE
  "CMakeFiles/lupine_kconfig.dir/classify.cc.o"
  "CMakeFiles/lupine_kconfig.dir/classify.cc.o.d"
  "CMakeFiles/lupine_kconfig.dir/config.cc.o"
  "CMakeFiles/lupine_kconfig.dir/config.cc.o.d"
  "CMakeFiles/lupine_kconfig.dir/dotconfig.cc.o"
  "CMakeFiles/lupine_kconfig.dir/dotconfig.cc.o.d"
  "CMakeFiles/lupine_kconfig.dir/kconfig_lang.cc.o"
  "CMakeFiles/lupine_kconfig.dir/kconfig_lang.cc.o.d"
  "CMakeFiles/lupine_kconfig.dir/linux_db.cc.o"
  "CMakeFiles/lupine_kconfig.dir/linux_db.cc.o.d"
  "CMakeFiles/lupine_kconfig.dir/option.cc.o"
  "CMakeFiles/lupine_kconfig.dir/option.cc.o.d"
  "CMakeFiles/lupine_kconfig.dir/option_db.cc.o"
  "CMakeFiles/lupine_kconfig.dir/option_db.cc.o.d"
  "CMakeFiles/lupine_kconfig.dir/presets.cc.o"
  "CMakeFiles/lupine_kconfig.dir/presets.cc.o.d"
  "CMakeFiles/lupine_kconfig.dir/resolver.cc.o"
  "CMakeFiles/lupine_kconfig.dir/resolver.cc.o.d"
  "liblupine_kconfig.a"
  "liblupine_kconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupine_kconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/lupine_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/lupine_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/config_search.cc" "src/core/CMakeFiles/lupine_core.dir/config_search.cc.o" "gcc" "src/core/CMakeFiles/lupine_core.dir/config_search.cc.o.d"
  "/root/repo/src/core/lineup.cc" "src/core/CMakeFiles/lupine_core.dir/lineup.cc.o" "gcc" "src/core/CMakeFiles/lupine_core.dir/lineup.cc.o.d"
  "/root/repo/src/core/lupine.cc" "src/core/CMakeFiles/lupine_core.dir/lupine.cc.o" "gcc" "src/core/CMakeFiles/lupine_core.dir/lupine.cc.o.d"
  "/root/repo/src/core/manifest_gen.cc" "src/core/CMakeFiles/lupine_core.dir/manifest_gen.cc.o" "gcc" "src/core/CMakeFiles/lupine_core.dir/manifest_gen.cc.o.d"
  "/root/repo/src/core/multik.cc" "src/core/CMakeFiles/lupine_core.dir/multik.cc.o" "gcc" "src/core/CMakeFiles/lupine_core.dir/multik.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unikernels/CMakeFiles/lupine_unikernels.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lupine_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lupine_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/lupine_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/lupine_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/kbuild/CMakeFiles/lupine_kbuild.dir/DependInfo.cmake"
  "/root/repo/build/src/kconfig/CMakeFiles/lupine_kconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

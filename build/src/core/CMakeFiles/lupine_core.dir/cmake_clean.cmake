file(REMOVE_RECURSE
  "CMakeFiles/lupine_core.dir/analysis.cc.o"
  "CMakeFiles/lupine_core.dir/analysis.cc.o.d"
  "CMakeFiles/lupine_core.dir/config_search.cc.o"
  "CMakeFiles/lupine_core.dir/config_search.cc.o.d"
  "CMakeFiles/lupine_core.dir/lineup.cc.o"
  "CMakeFiles/lupine_core.dir/lineup.cc.o.d"
  "CMakeFiles/lupine_core.dir/lupine.cc.o"
  "CMakeFiles/lupine_core.dir/lupine.cc.o.d"
  "CMakeFiles/lupine_core.dir/manifest_gen.cc.o"
  "CMakeFiles/lupine_core.dir/manifest_gen.cc.o.d"
  "CMakeFiles/lupine_core.dir/multik.cc.o"
  "CMakeFiles/lupine_core.dir/multik.cc.o.d"
  "liblupine_core.a"
  "liblupine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lupine_core.
# This may be replaced when dependencies are built.

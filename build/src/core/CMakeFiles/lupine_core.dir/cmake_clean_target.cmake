file(REMOVE_RECURSE
  "liblupine_core.a"
)

file(REMOVE_RECURSE
  "liblupine_util.a"
)

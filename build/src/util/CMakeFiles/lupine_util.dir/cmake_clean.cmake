file(REMOVE_RECURSE
  "CMakeFiles/lupine_util.dir/fiber.cc.o"
  "CMakeFiles/lupine_util.dir/fiber.cc.o.d"
  "CMakeFiles/lupine_util.dir/log.cc.o"
  "CMakeFiles/lupine_util.dir/log.cc.o.d"
  "CMakeFiles/lupine_util.dir/prng.cc.o"
  "CMakeFiles/lupine_util.dir/prng.cc.o.d"
  "CMakeFiles/lupine_util.dir/result.cc.o"
  "CMakeFiles/lupine_util.dir/result.cc.o.d"
  "CMakeFiles/lupine_util.dir/stats.cc.o"
  "CMakeFiles/lupine_util.dir/stats.cc.o.d"
  "CMakeFiles/lupine_util.dir/table.cc.o"
  "CMakeFiles/lupine_util.dir/table.cc.o.d"
  "CMakeFiles/lupine_util.dir/units.cc.o"
  "CMakeFiles/lupine_util.dir/units.cc.o.d"
  "CMakeFiles/lupine_util.dir/vclock.cc.o"
  "CMakeFiles/lupine_util.dir/vclock.cc.o.d"
  "liblupine_util.a"
  "liblupine_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupine_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/fiber.cc" "src/util/CMakeFiles/lupine_util.dir/fiber.cc.o" "gcc" "src/util/CMakeFiles/lupine_util.dir/fiber.cc.o.d"
  "/root/repo/src/util/log.cc" "src/util/CMakeFiles/lupine_util.dir/log.cc.o" "gcc" "src/util/CMakeFiles/lupine_util.dir/log.cc.o.d"
  "/root/repo/src/util/prng.cc" "src/util/CMakeFiles/lupine_util.dir/prng.cc.o" "gcc" "src/util/CMakeFiles/lupine_util.dir/prng.cc.o.d"
  "/root/repo/src/util/result.cc" "src/util/CMakeFiles/lupine_util.dir/result.cc.o" "gcc" "src/util/CMakeFiles/lupine_util.dir/result.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/util/CMakeFiles/lupine_util.dir/stats.cc.o" "gcc" "src/util/CMakeFiles/lupine_util.dir/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/util/CMakeFiles/lupine_util.dir/table.cc.o" "gcc" "src/util/CMakeFiles/lupine_util.dir/table.cc.o.d"
  "/root/repo/src/util/units.cc" "src/util/CMakeFiles/lupine_util.dir/units.cc.o" "gcc" "src/util/CMakeFiles/lupine_util.dir/units.cc.o.d"
  "/root/repo/src/util/vclock.cc" "src/util/CMakeFiles/lupine_util.dir/vclock.cc.o" "gcc" "src/util/CMakeFiles/lupine_util.dir/vclock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for lupine_util.
# This may be replaced when dependencies are built.

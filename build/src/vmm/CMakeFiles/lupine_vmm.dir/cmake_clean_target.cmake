file(REMOVE_RECURSE
  "liblupine_vmm.a"
)

# Empty compiler generated dependencies file for lupine_vmm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lupine_vmm.dir/monitor.cc.o"
  "CMakeFiles/lupine_vmm.dir/monitor.cc.o.d"
  "CMakeFiles/lupine_vmm.dir/vm.cc.o"
  "CMakeFiles/lupine_vmm.dir/vm.cc.o.d"
  "liblupine_vmm.a"
  "liblupine_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupine_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/vmm_test.dir/vmm/boot_phases_test.cc.o"
  "CMakeFiles/vmm_test.dir/vmm/boot_phases_test.cc.o.d"
  "CMakeFiles/vmm_test.dir/vmm/monitor_test.cc.o"
  "CMakeFiles/vmm_test.dir/vmm/monitor_test.cc.o.d"
  "CMakeFiles/vmm_test.dir/vmm/vm_test.cc.o"
  "CMakeFiles/vmm_test.dir/vmm/vm_test.cc.o.d"
  "vmm_test"
  "vmm_test.pdb"
  "vmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

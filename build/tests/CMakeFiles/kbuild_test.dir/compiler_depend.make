# Empty compiler generated dependencies file for kbuild_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kbuild_test.dir/kbuild/builder_test.cc.o"
  "CMakeFiles/kbuild_test.dir/kbuild/builder_test.cc.o.d"
  "CMakeFiles/kbuild_test.dir/kbuild/custom_db_test.cc.o"
  "CMakeFiles/kbuild_test.dir/kbuild/custom_db_test.cc.o.d"
  "CMakeFiles/kbuild_test.dir/kbuild/features_test.cc.o"
  "CMakeFiles/kbuild_test.dir/kbuild/features_test.cc.o.d"
  "CMakeFiles/kbuild_test.dir/kbuild/modules_test.cc.o"
  "CMakeFiles/kbuild_test.dir/kbuild/modules_test.cc.o.d"
  "CMakeFiles/kbuild_test.dir/kbuild/size_property_test.cc.o"
  "CMakeFiles/kbuild_test.dir/kbuild/size_property_test.cc.o.d"
  "CMakeFiles/kbuild_test.dir/kbuild/syscalls_test.cc.o"
  "CMakeFiles/kbuild_test.dir/kbuild/syscalls_test.cc.o.d"
  "kbuild_test"
  "kbuild_test.pdb"
  "kbuild_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbuild_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

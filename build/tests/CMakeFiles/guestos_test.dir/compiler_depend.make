# Empty compiler generated dependencies file for guestos_test.
# This may be replaced when dependencies are built.

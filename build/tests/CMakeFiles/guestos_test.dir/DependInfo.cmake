
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/guestos/console_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/console_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/console_test.cc.o.d"
  "/root/repo/tests/guestos/futex_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/futex_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/futex_test.cc.o.d"
  "/root/repo/tests/guestos/kernel_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/kernel_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/kernel_test.cc.o.d"
  "/root/repo/tests/guestos/loader_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/loader_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/loader_test.cc.o.d"
  "/root/repo/tests/guestos/mem_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/mem_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/mem_test.cc.o.d"
  "/root/repo/tests/guestos/net_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/net_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/net_test.cc.o.d"
  "/root/repo/tests/guestos/procfs_pid_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/procfs_pid_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/procfs_pid_test.cc.o.d"
  "/root/repo/tests/guestos/rootfs_property_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/rootfs_property_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/rootfs_property_test.cc.o.d"
  "/root/repo/tests/guestos/rootfs_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/rootfs_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/rootfs_test.cc.o.d"
  "/root/repo/tests/guestos/sched_property_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/sched_property_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/sched_property_test.cc.o.d"
  "/root/repo/tests/guestos/sched_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/sched_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/sched_test.cc.o.d"
  "/root/repo/tests/guestos/signal_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/signal_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/signal_test.cc.o.d"
  "/root/repo/tests/guestos/syscall_fd_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/syscall_fd_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/syscall_fd_test.cc.o.d"
  "/root/repo/tests/guestos/syscall_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/syscall_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/syscall_test.cc.o.d"
  "/root/repo/tests/guestos/unikernel_mode_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/unikernel_mode_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/unikernel_mode_test.cc.o.d"
  "/root/repo/tests/guestos/vfs_test.cc" "tests/CMakeFiles/guestos_test.dir/guestos/vfs_test.cc.o" "gcc" "tests/CMakeFiles/guestos_test.dir/guestos/vfs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lupine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/unikernels/CMakeFiles/lupine_unikernels.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lupine_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lupine_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/lupine_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/lupine_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/kbuild/CMakeFiles/lupine_kbuild.dir/DependInfo.cmake"
  "/root/repo/build/src/kconfig/CMakeFiles/lupine_kconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

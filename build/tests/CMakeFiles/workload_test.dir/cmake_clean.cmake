file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/app_bench_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/app_bench_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/lmbench_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/lmbench_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/messaging_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/messaging_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/microbench_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/microbench_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/stress_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/stress_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/variant_property_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/variant_property_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

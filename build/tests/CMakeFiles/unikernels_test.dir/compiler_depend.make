# Empty compiler generated dependencies file for unikernels_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/unikernels_test.dir/unikernels/comparisons_test.cc.o"
  "CMakeFiles/unikernels_test.dir/unikernels/comparisons_test.cc.o.d"
  "CMakeFiles/unikernels_test.dir/unikernels/linux_system_test.cc.o"
  "CMakeFiles/unikernels_test.dir/unikernels/linux_system_test.cc.o.d"
  "CMakeFiles/unikernels_test.dir/unikernels/models_test.cc.o"
  "CMakeFiles/unikernels_test.dir/unikernels/models_test.cc.o.d"
  "unikernels_test"
  "unikernels_test.pdb"
  "unikernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unikernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/kconfig_test.dir/kconfig/classify_test.cc.o"
  "CMakeFiles/kconfig_test.dir/kconfig/classify_test.cc.o.d"
  "CMakeFiles/kconfig_test.dir/kconfig/config_test.cc.o"
  "CMakeFiles/kconfig_test.dir/kconfig/config_test.cc.o.d"
  "CMakeFiles/kconfig_test.dir/kconfig/dotconfig_test.cc.o"
  "CMakeFiles/kconfig_test.dir/kconfig/dotconfig_test.cc.o.d"
  "CMakeFiles/kconfig_test.dir/kconfig/kconfig_lang_test.cc.o"
  "CMakeFiles/kconfig_test.dir/kconfig/kconfig_lang_test.cc.o.d"
  "CMakeFiles/kconfig_test.dir/kconfig/linux_db_test.cc.o"
  "CMakeFiles/kconfig_test.dir/kconfig/linux_db_test.cc.o.d"
  "CMakeFiles/kconfig_test.dir/kconfig/presets_test.cc.o"
  "CMakeFiles/kconfig_test.dir/kconfig/presets_test.cc.o.d"
  "CMakeFiles/kconfig_test.dir/kconfig/property_test.cc.o"
  "CMakeFiles/kconfig_test.dir/kconfig/property_test.cc.o.d"
  "CMakeFiles/kconfig_test.dir/kconfig/resolver_test.cc.o"
  "CMakeFiles/kconfig_test.dir/kconfig/resolver_test.cc.o.d"
  "kconfig_test"
  "kconfig_test.pdb"
  "kconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

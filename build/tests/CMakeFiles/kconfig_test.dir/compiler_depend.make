# Empty compiler generated dependencies file for kconfig_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for lupinectl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lupinectl.dir/lupinectl.cc.o"
  "CMakeFiles/lupinectl.dir/lupinectl.cc.o.d"
  "lupinectl"
  "lupinectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lupinectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

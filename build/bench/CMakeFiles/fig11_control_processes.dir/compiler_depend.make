# Empty compiler generated dependencies file for fig11_control_processes.
# This may be replaced when dependencies are built.

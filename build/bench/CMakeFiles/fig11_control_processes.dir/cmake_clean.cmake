file(REMOVE_RECURSE
  "CMakeFiles/fig11_control_processes.dir/fig11_control_processes.cc.o"
  "CMakeFiles/fig11_control_processes.dir/fig11_control_processes.cc.o.d"
  "fig11_control_processes"
  "fig11_control_processes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_control_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_memcached.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_memcached.cc" "bench/CMakeFiles/ext_memcached.dir/ext_memcached.cc.o" "gcc" "bench/CMakeFiles/ext_memcached.dir/ext_memcached.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lupine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/unikernels/CMakeFiles/lupine_unikernels.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lupine_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lupine_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/lupine_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/guestos/CMakeFiles/lupine_guestos.dir/DependInfo.cmake"
  "/root/repo/build/src/kbuild/CMakeFiles/lupine_kbuild.dir/DependInfo.cmake"
  "/root/repo/build/src/kconfig/CMakeFiles/lupine_kconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lupine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

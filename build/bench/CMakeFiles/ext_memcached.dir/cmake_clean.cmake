file(REMOVE_RECURSE
  "CMakeFiles/ext_memcached.dir/ext_memcached.cc.o"
  "CMakeFiles/ext_memcached.dir/ext_memcached.cc.o.d"
  "ext_memcached"
  "ext_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table4_app_performance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table4_app_performance.dir/table4_app_performance.cc.o"
  "CMakeFiles/table4_app_performance.dir/table4_app_performance.cc.o.d"
  "table4_app_performance"
  "table4_app_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_app_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

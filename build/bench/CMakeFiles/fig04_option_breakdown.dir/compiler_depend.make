# Empty compiler generated dependencies file for fig04_option_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_boot_per_app.dir/ext_boot_per_app.cc.o"
  "CMakeFiles/ext_boot_per_app.dir/ext_boot_per_app.cc.o.d"
  "ext_boot_per_app"
  "ext_boot_per_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_boot_per_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ext_boot_per_app.

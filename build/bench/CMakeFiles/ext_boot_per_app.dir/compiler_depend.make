# Empty compiler generated dependencies file for ext_boot_per_app.
# This may be replaced when dependencies are built.

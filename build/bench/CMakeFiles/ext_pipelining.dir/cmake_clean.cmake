file(REMOVE_RECURSE
  "CMakeFiles/ext_pipelining.dir/ext_pipelining.cc.o"
  "CMakeFiles/ext_pipelining.dir/ext_pipelining.cc.o.d"
  "ext_pipelining"
  "ext_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

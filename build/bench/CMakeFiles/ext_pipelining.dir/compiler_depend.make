# Empty compiler generated dependencies file for ext_pipelining.
# This may be replaced when dependencies are built.

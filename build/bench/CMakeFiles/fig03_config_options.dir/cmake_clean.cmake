file(REMOVE_RECURSE
  "CMakeFiles/fig03_config_options.dir/fig03_config_options.cc.o"
  "CMakeFiles/fig03_config_options.dir/fig03_config_options.cc.o.d"
  "fig03_config_options"
  "fig03_config_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_config_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

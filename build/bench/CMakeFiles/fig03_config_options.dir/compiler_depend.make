# Empty compiler generated dependencies file for fig03_config_options.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig06_image_size.
# This may be replaced when dependencies are built.

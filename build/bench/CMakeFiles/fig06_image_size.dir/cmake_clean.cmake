file(REMOVE_RECURSE
  "CMakeFiles/fig06_image_size.dir/fig06_image_size.cc.o"
  "CMakeFiles/fig06_image_size.dir/fig06_image_size.cc.o.d"
  "fig06_image_size"
  "fig06_image_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_image_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig10_kml_amortization.dir/fig10_kml_amortization.cc.o"
  "CMakeFiles/fig10_kml_amortization.dir/fig10_kml_amortization.cc.o.d"
  "fig10_kml_amortization"
  "fig10_kml_amortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_kml_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig10_kml_amortization.
# This may be replaced when dependencies are built.

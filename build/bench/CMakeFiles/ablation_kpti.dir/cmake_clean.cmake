file(REMOVE_RECURSE
  "CMakeFiles/ablation_kpti.dir/ablation_kpti.cc.o"
  "CMakeFiles/ablation_kpti.dir/ablation_kpti.cc.o.d"
  "ablation_kpti"
  "ablation_kpti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kpti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_kpti.
# This may be replaced when dependencies are built.

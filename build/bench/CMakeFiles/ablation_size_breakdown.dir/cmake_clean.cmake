file(REMOVE_RECURSE
  "CMakeFiles/ablation_size_breakdown.dir/ablation_size_breakdown.cc.o"
  "CMakeFiles/ablation_size_breakdown.dir/ablation_size_breakdown.cc.o.d"
  "ablation_size_breakdown"
  "ablation_size_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_size_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

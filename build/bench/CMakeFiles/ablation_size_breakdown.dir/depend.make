# Empty dependencies file for ablation_size_breakdown.
# This may be replaced when dependencies are built.

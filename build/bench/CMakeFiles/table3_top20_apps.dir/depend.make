# Empty dependencies file for table3_top20_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_top20_apps.dir/table3_top20_apps.cc.o"
  "CMakeFiles/table3_top20_apps.dir/table3_top20_apps.cc.o.d"
  "table3_top20_apps"
  "table3_top20_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_top20_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for host_microbench.
# This may be replaced when dependencies are built.

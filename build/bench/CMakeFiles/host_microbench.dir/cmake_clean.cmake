file(REMOVE_RECURSE
  "CMakeFiles/host_microbench.dir/host_microbench.cc.o"
  "CMakeFiles/host_microbench.dir/host_microbench.cc.o.d"
  "host_microbench"
  "host_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

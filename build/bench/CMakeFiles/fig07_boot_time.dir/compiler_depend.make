# Empty compiler generated dependencies file for fig07_boot_time.
# This may be replaced when dependencies are built.

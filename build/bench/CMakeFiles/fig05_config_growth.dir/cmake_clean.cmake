file(REMOVE_RECURSE
  "CMakeFiles/fig05_config_growth.dir/fig05_config_growth.cc.o"
  "CMakeFiles/fig05_config_growth.dir/fig05_config_growth.cc.o.d"
  "fig05_config_growth"
  "fig05_config_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_config_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

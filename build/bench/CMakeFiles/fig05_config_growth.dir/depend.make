# Empty dependencies file for fig05_config_growth.
# This may be replaced when dependencies are built.

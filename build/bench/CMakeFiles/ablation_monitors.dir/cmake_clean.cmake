file(REMOVE_RECURSE
  "CMakeFiles/ablation_monitors.dir/ablation_monitors.cc.o"
  "CMakeFiles/ablation_monitors.dir/ablation_monitors.cc.o.d"
  "ablation_monitors"
  "ablation_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_monitors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_syscall_options.dir/table1_syscall_options.cc.o"
  "CMakeFiles/table1_syscall_options.dir/table1_syscall_options.cc.o.d"
  "table1_syscall_options"
  "table1_syscall_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_syscall_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_syscall_options.
# This may be replaced when dependencies are built.

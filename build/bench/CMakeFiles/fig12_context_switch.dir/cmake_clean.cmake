file(REMOVE_RECURSE
  "CMakeFiles/fig12_context_switch.dir/fig12_context_switch.cc.o"
  "CMakeFiles/fig12_context_switch.dir/fig12_context_switch.cc.o.d"
  "fig12_context_switch"
  "fig12_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

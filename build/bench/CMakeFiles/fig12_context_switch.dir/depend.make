# Empty dependencies file for fig12_context_switch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec5_smp_overhead.dir/sec5_smp_overhead.cc.o"
  "CMakeFiles/sec5_smp_overhead.dir/sec5_smp_overhead.cc.o.d"
  "sec5_smp_overhead"
  "sec5_smp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_smp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

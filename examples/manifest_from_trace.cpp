// Generate an application manifest by dynamic analysis (the paper's
// future-work pipeline): run once on a fully-featured kernel with syscall
// tracing, map the trace back through Table 1, and check lupine-general
// coverage.
#include <cstdio>

#include "src/core/config_search.h"
#include "src/core/manifest_gen.h"

using namespace lupine;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "nginx";

  std::printf("Tracing '%s' on the microVM kernel (everything enabled)...\n", app.c_str());
  auto traced = core::GenerateManifestFromTrace(app);
  if (!traced.ok()) {
    std::fprintf(stderr, "trace failed: %s\n", traced.status().ToString().c_str());
    return 1;
  }
  std::printf("observed %zu syscalls (%zu distinct); gated options used:\n",
              traced->syscall_events, traced->distinct_syscalls);
  for (const auto& option : traced->options) {
    std::printf("  CONFIG_%s=y\n", option.c_str());
  }

  auto coverage = core::CheckLupineGeneralCoverage(traced->options);
  std::printf("\nlupine-general coverage: %s\n", coverage.covered ? "COVERED" : "NOT covered");
  for (const auto& missing : coverage.missing) {
    std::printf("  missing: CONFIG_%s\n", missing.c_str());
  }

  // Cross-check against the boot-loop search (one boot per missing option).
  std::printf("\nCross-checking with the console-driven search...\n");
  auto searched = core::DeriveMinimalConfig(app);
  if (searched.ok() && searched->success) {
    std::set<std::string> search_set(searched->added_options.begin(),
                                     searched->added_options.end());
    std::printf("search took %d boots and found %zu options: %s\n", searched->boots,
                search_set.size(),
                search_set == traced->options ? "IDENTICAL to trace" : "DIFFERS from trace");
  }
  std::printf("\nTracing needs 1 boot; the search needed %d. Dynamic analysis only sees\n"
              "exercised paths, so production manifests should union several traces\n"
              "(Section 7).\n", searched.ok() ? searched->boots : -1);
  return 0;
}

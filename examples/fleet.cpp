// Deploy the whole top-20 fleet through the MultiK-style kernel cache:
// identical specializations share one kernel image, every app keeps its own
// rootfs, and the whole fleet is then run under a Supervisor with injected
// faults — one member crashes once and is restarted with backoff, one
// crash-loops and is quarantined as degraded, the rest stay up.
//
// The build phase fans the fleet out over a thread pool: KernelCache is
// thread-safe with single-flight deduplication, so the 16 runtimes that
// share the zero-option lupine-base kernel trigger exactly one build among
// them no matter how the pool interleaves.
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "src/apps/manifest.h"
#include "src/core/fleet_boot.h"
#include "src/core/multik.h"
#include "src/kconfig/presets.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/util/fault.h"
#include "src/util/thread_pool.h"
#include "src/vmm/supervisor.h"
#include "src/workload/app_bench.h"

using namespace lupine;

int main() {
  core::KernelCache cache;
  ThreadPool pool(ThreadPool::DefaultThreads());

  const std::vector<std::string> fleet = kconfig::Top20AppNames();
  std::printf("Building kernels for the top-20 Docker Hub applications (%zu workers)...\n\n",
              pool.size());
  const auto build_start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<core::KernelCache::ArtifactPtr>>> builds;
  builds.reserve(fleet.size());
  for (const auto& app : fleet) {
    builds.push_back(pool.Submit([&cache, &app] { return cache.GetOrBuild(app); }));
  }
  std::vector<Result<core::KernelCache::ArtifactPtr>> artifacts;
  artifacts.reserve(fleet.size());
  for (auto& build : builds) {
    artifacts.push_back(build.get());
  }
  const auto build_elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            build_start);

  std::printf("%-16s %-10s %s\n", "app", "image", "kernel fingerprint");
  for (size_t i = 0; i < fleet.size(); ++i) {
    const auto& artifact = artifacts[i];
    if (!artifact.ok()) {
      std::fprintf(stderr, "%s: %s\n", fleet[i].c_str(), artifact.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s %-10s %p\n", fleet[i].c_str(),
                FormatSize((*artifact)->kernel->size).c_str(),
                static_cast<const void*>((*artifact)->kernel.get()));
  }
  std::printf("\nparallel fleet build wall time: %lld us\n",
              static_cast<long long>(build_elapsed.count()));

  auto stats = cache.stats();
  std::printf("\nfleet: %zu apps, %zu distinct kernels (%zu builds for %zu requests)\n",
              stats.apps, stats.distinct_kernels, stats.builds, stats.requests);
  std::printf("image bytes without sharing: %s\n",
              FormatSize(stats.bytes_if_unshared).c_str());
  std::printf("image bytes stored:          %s (saved %s)\n",
              FormatSize(stats.bytes_stored).c_str(), FormatSize(stats.bytes_saved()).c_str());
  auto rootfs_stats = cache.rootfs_stats();
  std::printf("rootfs cache: %zu requests, %zu builds, %zu hits (%s stored)\n",
              rootfs_stats.requests, rootfs_stats.builds, rootfs_stats.hits,
              FormatSize(rootfs_stats.bytes_stored).c_str());

  // Boot two fleet members that share the zero-option kernel — in parallel,
  // on pool workers (each VM's fibers are thread-local, so independent VMs
  // run concurrently).
  std::printf("\nBooting golang and hello-world on their shared kernel...\n");
  struct BootOutcome {
    int exit_code;
    Nanos to_init;
  };
  std::vector<std::string> boot_apps = {"golang", "hello-world"};
  std::vector<std::future<BootOutcome>> boots;
  for (const auto& app : boot_apps) {
    boots.push_back(pool.Submit([&cache, &app]() -> BootOutcome {
      auto artifact = cache.GetOrBuild(app);
      auto vm = (*artifact)->Launch(128 * kMiB);
      auto result = vm->BootAndRun();
      return {result.exit_code, vm->boot_report().to_init};
    }));
  }
  for (size_t i = 0; i < boot_apps.size(); ++i) {
    BootOutcome outcome = boots[i].get();
    std::printf("  %-12s exit=%d boot=%s\n", boot_apps[i].c_str(), outcome.exit_code,
                FormatDuration(outcome.to_init).c_str());
  }

  // And one server with its own specialized kernel.
  auto redis = cache.GetOrBuild("redis");
  auto vm = (*redis)->Launch();
  bool ready = workload::BootAppServer(*vm, "Ready to accept connections");
  std::printf("  %-12s %s\n", "redis", ready ? "serving" : "FAILED");
  if (!ready) {
    return 1;
  }

  // --- The fleet under a Supervisor, with injected faults -------------------
  // redis panics once (a wild access in ring 0 early in boot) and must come
  // back after one backoff; mysql dies in an initcall on every boot and must
  // end up quarantined as degraded without disturbing the other 18 members.
  std::printf("\nSupervising the top-20 fleet under injected faults...\n");

  // Injectors live outside the VMs so the schedule survives restarts: redis's
  // single kAppFault is consumed on attempt 1 and attempt 2 runs clean.
  FaultInjector redis_faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 10));
  FaultInjector mysql_faults(FaultPlan{}.FireAlways(FaultSite::kBootInitcall));

  vmm::SupervisorPolicy policy;
  policy.crash_loop_failures = 3;
  vmm::Supervisor supervisor(policy);
  // Telemetry: the supervisor streams incident counters, backoff and
  // time-to-healthy histograms into the registry; the cache snapshot and the
  // JSON export land at the end of the run.
  telemetry::MetricRegistry registry;
  supervisor.set_metrics(&registry);
  // Flight recorder: every supervisor incident, fleet-boot lifecycle step,
  // admission verdict, and cache hit/miss/evict below lands in one journal.
  telemetry::Journal journal;
  supervisor.set_journal(&journal);
  for (const auto& app : kconfig::Top20AppNames()) {
    auto artifact = cache.GetOrBuild(app);
    if (!artifact.ok()) {
      std::fprintf(stderr, "%s: %s\n", app.c_str(), artifact.status().ToString().c_str());
      return 1;
    }
    const apps::AppManifest* manifest = apps::FindManifest(app);
    FaultInjector* faults = nullptr;
    if (app == "redis") {
      faults = &redis_faults;
    } else if (app == "mysql") {
      faults = &mysql_faults;
    }
    core::KernelCache::ArtifactPtr artifact_ptr = *artifact;
    std::string marker =
        manifest->kind == apps::AppKind::kServer ? manifest->ready_line : "";
    supervisor.AddMember(
        app, [artifact_ptr, faults] { return artifact_ptr->Launch(512 * kMiB, faults); },
        marker);
  }

  size_t unsettled = supervisor.Run();
  std::printf("\nredis incident timeline:\n%s", supervisor.TimelineText("redis").c_str());
  std::printf("\nmysql incident timeline:\n%s", supervisor.TimelineText("mysql").c_str());
  std::printf("\nfleet after %s: %zu healthy, %zu completed, %zu degraded\n",
              FormatDuration(supervisor.clock().now()).c_str(),
              supervisor.count(vmm::MemberState::kHealthy),
              supervisor.count(vmm::MemberState::kCompleted),
              supervisor.count(vmm::MemberState::kDegraded));

  // --- Pipelined fleet boot + Chrome trace export ---------------------------
  // A cold cache and the default pipelined schedule: kernel-build and rootfs
  // tasks are split out per distinct stage key, so one app's kernel build
  // overlaps another's rootfs assembly and the boots behind them. The
  // per-worker virtual timelines render as a chrome://tracing / Perfetto
  // document (one thread row per worker).
  std::printf("\nPipelined cold-cache fleet boot (4 workers, work stealing)...\n");
  core::KernelCache cold_cache;
  cold_cache.set_journal(&journal);
  core::FleetBootOptions fleet_options;
  fleet_options.apps = {"nginx", "redis", "golang", "python", "node", "hello-world"};
  fleet_options.workers = 4;
  fleet_options.journal = &journal;
  auto fleet_run = core::RunFleetBoot(cold_cache, fleet_options);
  if (!fleet_run.ok()) {
    std::fprintf(stderr, "fleet boot: %s\n", fleet_run.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu boots, makespan %s, %zu steals\n", fleet_run->boots,
              FormatDuration(fleet_run->virtual_makespan).c_str(), fleet_run->steals);
  // One merged Perfetto document: worker span rows, journal instants, and
  // counter tracks (tasks in flight, resident bytes, cumulative boots).
  const std::string trace = telemetry::ToChromeTrace(fleet_run->worker_timelines, journal,
                                                     fleet_run->counter_tracks);
  if (Status s = telemetry::WriteFile("fleet_trace.json", trace); !s.ok()) {
    std::fprintf(stderr, "trace export: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  wrote fleet_trace.json (load it in chrome://tracing or Perfetto)\n");
  // The canonical journal export: schedule-scoped events (steals, admission
  // verdicts, cache races) are excluded, so this file is byte-identical no
  // matter how many workers replayed the fleet.
  if (Status s = telemetry::WriteFile("fleet_journal.jsonl", journal.ExportJsonl()); !s.ok()) {
    std::fprintf(stderr, "journal export: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  wrote fleet_journal.jsonl (%zu events recorded)\n", journal.size());

  // Everything above also landed in the metric registry — export it as the
  // same JSON document the benches write to BENCH_*.json artifacts.
  cache.PublishMetrics(registry);
  std::printf("\ntelemetry snapshot (JSON export):\n%s\n",
              telemetry::ExportJson(registry).c_str());

  const bool ok = unsettled == 1 &&  // mysql degraded is the only unsettled member
                  supervisor.state("redis") == vmm::MemberState::kHealthy &&
                  supervisor.stats("redis").attempts == 2 &&
                  supervisor.state("mysql") == vmm::MemberState::kDegraded;
  std::printf("%s\n", ok ? "fleet supervision OK" : "fleet supervision FAILED");
  return ok ? 0 : 1;
}

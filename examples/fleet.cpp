// Deploy the whole top-20 fleet through the MultiK-style kernel cache:
// identical specializations share one kernel image, every app keeps its own
// rootfs, and a few members are booted to prove the shared kernels work.
#include <cstdio>

#include "src/core/multik.h"
#include "src/kconfig/presets.h"
#include "src/workload/app_bench.h"

using namespace lupine;

int main() {
  core::KernelCache cache;

  std::printf("Building kernels for the top-20 Docker Hub applications...\n\n");
  std::printf("%-16s %-10s %s\n", "app", "image", "kernel fingerprint");
  for (const auto& app : kconfig::Top20AppNames()) {
    auto artifact = cache.GetOrBuild(app);
    if (!artifact.ok()) {
      std::fprintf(stderr, "%s: %s\n", app.c_str(), artifact.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s %-10s %p\n", app.c_str(),
                FormatSize((*artifact)->kernel->size).c_str(),
                static_cast<const void*>((*artifact)->kernel));
  }

  auto stats = cache.stats();
  std::printf("\nfleet: %zu apps, %zu distinct kernels (%zu builds for %zu requests)\n",
              stats.apps, stats.distinct_kernels, stats.builds, stats.requests);
  std::printf("image bytes without sharing: %s\n",
              FormatSize(stats.bytes_if_unshared).c_str());
  std::printf("image bytes stored:          %s (saved %s)\n",
              FormatSize(stats.bytes_stored).c_str(), FormatSize(stats.bytes_saved()).c_str());

  // Boot two fleet members that share the zero-option kernel.
  std::printf("\nBooting golang and hello-world on their shared kernel...\n");
  for (const std::string app : {"golang", "hello-world"}) {
    auto artifact = cache.GetOrBuild(app);
    auto vm = (*artifact)->Launch(128 * kMiB);
    auto result = vm->BootAndRun();
    std::printf("  %-12s exit=%d boot=%s\n", app.c_str(), result.exit_code,
                FormatDuration(vm->boot_report().to_init).c_str());
  }

  // And one server with its own specialized kernel.
  auto redis = cache.GetOrBuild("redis");
  auto vm = (*redis)->Launch();
  bool ready = workload::BootAppServer(*vm, "Ready to accept connections");
  std::printf("  %-12s %s\n", "redis", ready ? "serving" : "FAILED");
  return ready ? 0 : 1;
}

// Explore the specialization pipeline: derive an app's minimal config with
// the automatic search, diff it against lupine-base, and emit .config text.
#include <cstdio>
#include <cstring>

#include "src/core/config_search.h"
#include "src/kconfig/dotconfig.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"

using namespace lupine;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "redis";

  std::printf("Deriving the minimal viable configuration for '%s'\n", app.c_str());
  std::printf("(boot on lupine-base, read the console, add one option, repeat)\n\n");

  auto result = core::DeriveMinimalConfig(app);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (!result->success) {
    std::fprintf(stderr, "search failed after %d boots:\n%s\n", result->boots,
                 result->failure.c_str());
    return 1;
  }

  std::printf("converged after %d build+boot cycles; options discovered in order:\n",
              result->boots);
  for (size_t i = 0; i < result->added_options.size(); ++i) {
    std::printf("  %2zu. CONFIG_%s\n", i + 1, result->added_options[i].c_str());
  }

  // Rebuild the final config and dump the .config delta.
  kconfig::Config config = kconfig::LupineBase();
  config.set_name("lupine-" + app);
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  for (const auto& option : result->added_options) {
    (void)resolver.Enable(config, option);
  }
  std::printf("\n%zu options total (%zu in lupine-base + %zu app-specific)\n",
              config.EnabledCount(), kconfig::LupineBase().EnabledCount(),
              result->added_options.size());

  std::printf("\n--- .config fragment (additions atop lupine-base) ---\n");
  for (const auto& option : config.Minus(kconfig::LupineBase())) {
    std::printf("CONFIG_%s=y\n", option.c_str());
  }
  return 0;
}

// Quickstart: build a Lupine unikernel for hello-world, boot it on the
// simulated Firecracker monitor, and inspect what happened.
#include <cstdio>

#include "src/core/lupine.h"
#include "src/util/units.h"

using namespace lupine;

int main() {
  // 1. Build: specialize the kernel to the app's manifest and pack its
  //    container image into a rootfs with a generated init script.
  core::LupineBuilder builder;
  auto unikernel = builder.BuildForApp("hello-world");
  if (!unikernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", unikernel.status().ToString().c_str());
    return 1;
  }
  std::printf("built %s: kernel image %s, %zu config options\n",
              unikernel->config.name().c_str(), FormatSize(unikernel->kernel.size).c_str(),
              unikernel->config.EnabledCount());

  // 2. Launch on Firecracker with 64 MiB of RAM and run to completion.
  auto vm = unikernel->Launch(64 * kMiB);
  auto result = vm->BootAndRun();
  if (!result.status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status.ToString().c_str());
    return 1;
  }

  // 3. Inspect.
  std::printf("\nboot time: %s (to init)\n",
              FormatDuration(vm->boot_report().to_init).c_str());
  std::printf("exit code: %d\n", result.exit_code);
  std::printf("peak guest memory: %s\n", FormatSize(vm->kernel().mm().peak()).c_str());
  std::printf("\n--- guest console ---\n%s", result.console.c_str());
  return 0;
}

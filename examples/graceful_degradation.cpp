// Section 5 in action: an application that forks control processes runs
// fine on Lupine (with measurable-but-tiny overhead) while every reference
// unikernel refuses or crashes.
#include <cstdio>

#include "src/unikernels/linux_system.h"
#include "src/unikernels/unikernel_models.h"

using namespace lupine;

int main() {
  const char* app = "postgres";  // Five processes: the anti-unikernel app.

  std::printf("Can each system run %s (a forking, multi-process app)?\n\n", app);
  {
    unikernels::LinuxSystem lupine(unikernels::LupineSpec());
    auto support = lupine.Supports(app);
    std::printf("  %-10s: %s\n", lupine.name().c_str(),
                support.supported ? "yes — it is Linux" : support.reason.c_str());
  }
  for (auto profile : {unikernels::OsvProfile(), unikernels::HermituxProfile(),
                       unikernels::RumpProfile()}) {
    unikernels::UnikernelModel model(profile);
    auto support = model.Supports(app);
    std::printf("  %-10s: %s\n", model.name().c_str(),
                support.supported ? "yes" : ("NO — " + support.reason).c_str());
  }

  std::printf("\nBooting %s on lupine...\n", app);
  unikernels::LinuxSystem lupine(unikernels::LupineSpec());
  auto vm = lupine.MakeVm(app, 512 * kMiB);
  if (!vm.ok()) {
    std::fprintf(stderr, "build failed: %s\n", vm.status().ToString().c_str());
    return 1;
  }
  if (Status s = (*vm)->Boot(); !s.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", s.ToString().c_str());
    return 1;
  }
  (*vm)->kernel().Run();
  std::printf("guest processes now alive: %zu (init + postmaster + workers)\n",
              (*vm)->kernel().ProcessCount());
  std::printf("context switches so far: %llu\n",
              static_cast<unsigned long long>((*vm)->kernel().sched().stats().context_switches));
  std::printf("\n--- console ---\n%s", (*vm)->kernel().console().contents().c_str());
  std::printf("\nGraceful degradation: fork works, at the cost of a few context\n"
              "switches — no crash, no curated list (Section 5).\n");
  return 0;
}

// Build a Lupine unikernel for a *custom* application: define a manifest
// and container image by hand, register a behaviour model, and launch.
#include <cstdio>

#include "src/core/lupine.h"
#include "src/guestos/loader.h"
#include "src/guestos/syscall_api.h"
#include "src/kconfig/option_names.h"

using namespace lupine;
namespace n = kconfig::names;

namespace {

// The application: a tiny key-value "cache warmer" that mmaps a working
// set, writes a status file, and exits.
int CacheWarmerMain(guestos::SyscallApi& sys, const std::vector<std::string>& argv) {
  (void)argv;
  (void)sys.Write(1, "cache-warmer: starting\n");

  // Exercise the optional features the manifest declares.
  auto ep = sys.EpollCreate1();
  if (!ep.ok()) {
    (void)sys.Write(2, "epoll_create1 failed: function not implemented\n");
    return 1;
  }
  (void)sys.Close(ep.value());

  if (Status s = sys.BrkGrow(8 * kMiB); !s.ok()) {
    return 1;
  }
  (void)sys.TouchHeap(0, 8 * kMiB);

  auto fd = sys.Open("/tmp/warm.status", /*create=*/true);
  if (fd.ok()) {
    (void)sys.Write(fd.value(), "warmed 2048 pages\n");
    (void)sys.Close(fd.value());
  }
  (void)sys.Write(1, "cache-warmer: done\n");
  return 0;
}

}  // namespace

int main() {
  // Register the behaviour model under the name the binary will reference.
  guestos::AppRegistry::Global().Register("cache-warmer", CacheWarmerMain);

  // The manifest: what the developer supplies (Section 3, "application
  // manifest") — the kernel options the app needs and its shape.
  apps::AppManifest manifest;
  manifest.name = "cache-warmer";
  manifest.kind = apps::AppKind::kOneShot;
  manifest.required_options = {n::kEpoll, n::kTmpfs};
  manifest.ready_line = "cache-warmer: done";
  manifest.text_kb = 96;
  manifest.data_kb = 16;
  manifest.startup_heap_kb = 512;

  apps::ContainerImage image;
  image.name = "cache-warmer:0.1";
  image.app = "cache-warmer";
  image.entrypoint = {"/bin/cache-warmer"};
  image.env["WARM_TARGET"] = "2048";
  image.setup_dirs = {"/tmp"};

  core::LupineBuilder builder;
  auto unikernel = builder.Build(manifest, image);
  if (!unikernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", unikernel.status().ToString().c_str());
    return 1;
  }
  std::printf("kernel: %s (%zu options, %s)\n", unikernel->config.name().c_str(),
              unikernel->config.EnabledCount(), FormatSize(unikernel->kernel.size).c_str());
  std::printf("init script:\n%s\n", unikernel->init_script.c_str());

  auto vm = unikernel->Launch(128 * kMiB);
  auto result = vm->BootAndRun();
  std::printf("exit=%d, boot=%s\n--- console ---\n%s", result.exit_code,
              FormatDuration(vm->boot_report().to_init).c_str(), result.console.c_str());
  return result.exit_code;
}

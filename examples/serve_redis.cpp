// Boot a KML-enabled Lupine redis unikernel and drive it with the
// redis-benchmark workload, comparing against the microVM baseline — the
// Table 4 experiment in miniature.
#include <cstdio>

#include "src/core/lupine.h"
#include "src/unikernels/linux_system.h"
#include "src/workload/app_bench.h"

using namespace lupine;

namespace {

double MeasureRedis(const unikernels::LinuxVariantSpec& spec) {
  unikernels::LinuxSystem system(spec);
  auto rps = system.RedisThroughput(/*set_workload=*/false);
  if (!rps.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", spec.name.c_str(),
                 rps.status().ToString().c_str());
    return 0;
  }
  return rps.value();
}

}  // namespace

int main() {
  std::printf("Running redis-benchmark (GET) against three kernels...\n\n");

  double microvm = MeasureRedis(unikernels::MicrovmSpec());
  double lupine = MeasureRedis(unikernels::LupineSpec());
  double nokml = MeasureRedis(unikernels::LupineNokmlSpec());

  std::printf("microVM:       %8.0f req/s (1.00x)\n", microvm);
  std::printf("lupine (KML):  %8.0f req/s (%.2fx)\n", lupine, lupine / microvm);
  std::printf("lupine-nokml:  %8.0f req/s (%.2fx)\n", nokml, nokml / microvm);
  std::printf("\nPaper (Table 4): lupine 1.21x, lupine-nokml 1.20x.\n");
  std::printf("Specialization, not KML, carries the win (Section 4.6).\n");
  return 0;
}

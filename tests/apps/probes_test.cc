#include "src/apps/probes.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::apps {
namespace {

namespace n = kconfig::names;
using guestos::testing::GuestFixture;

// Property check: on lupine-base each probe fails with its documented
// console diagnostic; with the option enabled the same probe passes.
class ProbeGateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProbeGateTest, FailsWithoutOptionPassesWithIt) {
  const std::string option = GetParam();

  kconfig::Config base = kconfig::LupineBase();
  GuestFixture without(base);
  bool ok_without = true;
  without.RunInGuest([&](guestos::SyscallApi& sys) {
    ok_without = ProbeOption(sys, option);
  });
  EXPECT_FALSE(ok_without) << option;
  EXPECT_FALSE(without.kernel->console().contents().empty()) << option;

  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  kconfig::Config enabled = kconfig::LupineBase();
  ASSERT_TRUE(resolver.Enable(enabled, option).ok()) << option;
  GuestFixture with(enabled);
  bool ok_with = false;
  with.RunInGuest([&](guestos::SyscallApi& sys) { ok_with = ProbeOption(sys, option); });
  EXPECT_TRUE(ok_with) << option << " console: " << with.kernel->console().contents();
}

INSTANTIATE_TEST_SUITE_P(
    AllNineteen, ProbeGateTest,
    ::testing::Values(n::kFutex, n::kEpoll, n::kUnix, n::kEventfd, n::kAio, n::kTimerfd,
                      n::kSignalfd, n::kInotifyUser, n::kFanotify, n::kFhandle,
                      n::kFileLocking, n::kAdviseSyscalls, n::kBpfSyscall, n::kSysvipc,
                      n::kPosixMqueue, n::kTmpfs, n::kProcSysctl, n::kIpv6, n::kPacket));

TEST(ProbesTest, UnknownOptionHasNoProbe) {
  GuestFixture guest(kconfig::LupineBase());
  guest.RunInGuest([&](guestos::SyscallApi& sys) {
    EXPECT_TRUE(ProbeOption(sys, "SOME_FILLER_OPTION"));
  });
}

TEST(ProbesTest, StartupProbesStopAtFirstFailure) {
  GuestFixture guest(kconfig::LupineBase());
  guest.RunInGuest([&](guestos::SyscallApi& sys) {
    EXPECT_FALSE(RunStartupProbes(sys, {n::kFutex, n::kEpoll}));
  });
  // Only the first failure surfaced (one diagnostic per boot, Section 4.1).
  EXPECT_TRUE(guest.kernel->console().Contains("futex facility"));
  EXPECT_FALSE(guest.kernel->console().Contains("epoll_create1"));
}

TEST(ProbesTest, AllProbesPassOnLupineGeneral) {
  GuestFixture guest;  // lupine-general.
  guest.RunInGuest([&](guestos::SyscallApi& sys) {
    for (const auto& app : kconfig::Top20AppNames()) {
      EXPECT_TRUE(RunStartupProbes(sys, kconfig::AppExtraOptions(app))) << app;
    }
  });
}

}  // namespace
}  // namespace lupine::apps

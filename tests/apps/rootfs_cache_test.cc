// RootfsCache: content-addressed keying, single-flight deduplication under
// thread storms, and size-aware LRU eviction with pinned-entry protection.
// The threaded tests run under ThreadSanitizer in CI (no VMs are booted).
#include "src/apps/rootfs_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/apps/builtin.h"

namespace lupine::apps {
namespace {

ContainerImage Image(const std::string& app) {
  RegisterBuiltinApps();
  const AppManifest* manifest = FindManifest(app);
  EXPECT_NE(manifest, nullptr) << app;
  return MakeAlpineImage(*manifest);
}

TEST(RootfsCacheTest, KeyIsStableAndCoversImageFields) {
  const ContainerImage redis = Image("redis");
  EXPECT_EQ(RootfsCache::CacheKey(redis, {}), RootfsCache::CacheKey(redis, {}));
  EXPECT_NE(RootfsCache::CacheKey(redis, {}), RootfsCache::CacheKey(Image("nginx"), {}));

  // Every field that reaches the blob must reach the key.
  ContainerImage tweaked = redis;
  tweaked.env["EXTRA"] = "1";
  EXPECT_NE(RootfsCache::CacheKey(redis, {}), RootfsCache::CacheKey(tweaked, {}));
  tweaked = redis;
  tweaked.entrypoint.push_back("--appendonly");
  EXPECT_NE(RootfsCache::CacheKey(redis, {}), RootfsCache::CacheKey(tweaked, {}));
}

TEST(RootfsCacheTest, KmlOptionNeverCollapsesIntoThePlainKey) {
  // A KML rootfs carries the KML-patched musl: same image, different blob.
  const ContainerImage image = Image("redis");
  RootfsOptions plain;
  RootfsOptions kml;
  kml.kml_libc = true;
  EXPECT_NE(RootfsCache::CacheKey(image, plain), RootfsCache::CacheKey(image, kml));

  RootfsCache cache;
  auto plain_blob = cache.GetOrBuild(image, plain);
  auto kml_blob = cache.GetOrBuild(image, kml);
  EXPECT_NE(plain_blob, kml_blob);
  EXPECT_NE(*plain_blob, *kml_blob);
  EXPECT_EQ(cache.stats().builds, 2u);
}

TEST(RootfsCacheTest, SecondRequestIsAHitOnTheSameBlob) {
  RootfsCache cache;
  const ContainerImage image = Image("nginx");
  auto first = cache.GetOrBuild(image, {});
  auto second = cache.GetOrBuild(image, {});
  EXPECT_EQ(first, second);  // Same shared blob, not a copy.
  auto stats = cache.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.bytes_stored, first->size());
}

TEST(RootfsCacheTest, EightThreadStormBuildsEachDistinctKeyOnce) {
  constexpr size_t kThreads = 8;
  constexpr size_t kRequestsPerThread = 8;
  const std::vector<ContainerImage> images = {Image("redis"), Image("nginx"),
                                              Image("hello-world")};
  RootfsCache cache;
  std::atomic<bool> start{false};
  std::vector<RootfsCache::BlobPtr> first_blob(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load()) {
        std::this_thread::yield();
      }
      for (size_t i = 0; i < kRequestsPerThread; ++i) {
        // Rotate so threads collide on different images first.
        const ContainerImage& image = images[(i + t) % images.size()];
        auto blob = cache.GetOrBuild(image, {});
        ASSERT_NE(blob, nullptr);
        if (i == 0 && t % images.size() == 0) {
          first_blob[t] = blob;
        }
      }
    });
  }
  start.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.requests, kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.builds, images.size());  // One build per distinct key.
  EXPECT_EQ(stats.hits, stats.requests - stats.builds);
}

TEST(RootfsCacheTest, EvictionDropsTheLeastRecentlyUsedFirst) {
  RootfsCache cache;  // Unbounded while populating.
  const ContainerImage redis = Image("redis");
  const ContainerImage nginx = Image("nginx");
  const ContainerImage hello = Image("hello-world");
  (void)cache.GetOrBuild(redis, {});
  (void)cache.GetOrBuild(nginx, {});
  (void)cache.GetOrBuild(hello, {});
  // Touch redis so nginx becomes the LRU entry.
  (void)cache.GetOrBuild(redis, {});

  CacheBudget budget;
  budget.max_entries = 2;
  cache.set_budget(budget);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // redis and hello survived (hits); nginx was rebuilt (a miss).
  const size_t builds_before = cache.stats().builds;
  (void)cache.GetOrBuild(redis, {});
  (void)cache.GetOrBuild(hello, {});
  EXPECT_EQ(cache.stats().builds, builds_before);
  (void)cache.GetOrBuild(nginx, {});
  EXPECT_EQ(cache.stats().builds, builds_before + 1);
}

TEST(RootfsCacheTest, HeldBlobsArePinnedAgainstEviction) {
  RootfsCache cache;
  const ContainerImage redis = Image("redis");
  auto held = cache.GetOrBuild(redis, {});  // Keep a live reference.
  (void)cache.GetOrBuild(Image("nginx"), {});

  CacheBudget budget;
  budget.max_entries = 0;
  budget.max_bytes = 1;  // Nothing fits.
  cache.set_budget(budget);

  // nginx (unreferenced) went; redis is pinned by `held` and stays a hit.
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  const size_t builds_before = stats.builds;
  EXPECT_EQ(cache.GetOrBuild(redis, {}), held);
  EXPECT_EQ(cache.stats().builds, builds_before);

  // Dropping the pin makes the entry evictable on the next pass.
  held.reset();
  cache.set_budget(budget);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(RootfsCacheTest, ChurningKeysStayUnderTheByteBudget) {
  const ContainerImage base = Image("hello-world");
  const Bytes blob_size = RootfsCache(CacheBudget{}).GetOrBuild(base, {})->size();

  CacheBudget budget;
  budget.max_bytes = 4 * blob_size;
  RootfsCache cache(budget);
  for (int i = 0; i < 100; ++i) {
    ContainerImage churn = base;
    churn.env["CHURN"] = std::to_string(i);  // 100 distinct keys.
    (void)cache.GetOrBuild(churn, {});
    EXPECT_LE(cache.stats().bytes_stored, budget.max_bytes) << "iteration " << i;
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.builds, 100u);
  EXPECT_GE(stats.evictions, 90u);
  EXPECT_GT(stats.bytes_evicted, 0u);
}

}  // namespace
}  // namespace lupine::apps

#include "src/apps/rootfs_builder.h"

#include <gtest/gtest.h>

#include "src/apps/manifest.h"
#include "src/guestos/loader.h"

namespace lupine::apps {
namespace {

TEST(RootfsBuilderTest, AlpineBaseLayout) {
  guestos::FsSpec spec = BuildAppRootfsSpec(MakeAlpineImage(*FindManifest("redis")), {});
  EXPECT_TRUE(spec.count("/sbin/init"));
  EXPECT_TRUE(spec.count("/lib/ld-musl-x86_64.so.1"));
  EXPECT_TRUE(spec.count("/etc/alpine-release"));
  EXPECT_TRUE(spec.count("/bin/redis"));
  EXPECT_TRUE(spec.count("/etc/redis.conf"));
  EXPECT_TRUE(spec.at("/sbin/init").executable);
  EXPECT_TRUE(spec.at("/bin/redis").executable);
}

TEST(RootfsBuilderTest, KmlLibcInstalledOnRequest) {
  guestos::FsSpec plain = BuildAppRootfsSpec(MakeAlpineImage(*FindManifest("redis")),
                                             {.kml_libc = false});
  guestos::FsSpec kml = BuildAppRootfsSpec(MakeAlpineImage(*FindManifest("redis")),
                                           {.kml_libc = true});
  EXPECT_EQ(plain.at("/lib/ld-musl-x86_64.so.1").data.find("KML"), std::string::npos);
  EXPECT_NE(kml.at("/lib/ld-musl-x86_64.so.1").data.find("KML"), std::string::npos);

  auto plain_bin = guestos::ParseBinary(plain.at("/bin/redis").data);
  auto kml_bin = guestos::ParseBinary(kml.at("/bin/redis").data);
  ASSERT_TRUE(plain_bin.ok());
  ASSERT_TRUE(kml_bin.ok());
  EXPECT_FALSE(plain_bin->kml_libc());
  EXPECT_TRUE(kml_bin->kml_libc());
}

TEST(RootfsBuilderTest, StaticBinaryKeepsNoInterp) {
  guestos::FsSpec spec = BuildAppRootfsSpec(MakeAlpineImage(*FindManifest("hello-world")), {});
  auto binary = guestos::ParseBinary(spec.at("/bin/hello-world").data);
  ASSERT_TRUE(binary.ok());
  EXPECT_FALSE(binary->dynamic());
  EXPECT_EQ(binary->libc, "static");
}

TEST(RootfsBuilderTest, BinarySegmentSizesFromManifest) {
  const AppManifest* redis = FindManifest("redis");
  guestos::FsSpec spec = BuildAppRootfsSpec(MakeAlpineImage(*redis), {});
  auto binary = guestos::ParseBinary(spec.at("/bin/redis").data);
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary->text_kb, redis->text_kb);
  EXPECT_EQ(binary->data_kb, redis->data_kb);
}

TEST(RootfsBuilderTest, BlobParsesBack) {
  std::string blob = BuildAppRootfsForApp("nginx", /*kml_libc=*/true);
  auto spec = guestos::ParseRootfs(blob);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().count("/bin/nginx"));
  EXPECT_TRUE(spec.value().count("/usr/share/nginx/html/index.html"));
}

TEST(RootfsBuilderTest, BenchRootfsHasHelpers) {
  auto spec = guestos::ParseRootfs(BuildBenchRootfs(false));
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().count("/bin/hello"));
  EXPECT_TRUE(spec.value().count("/bin/sh"));
  EXPECT_TRUE(spec.value().count("/sbin/init"));
}

TEST(RootfsBuilderTest, UnknownAppStillBuilds) {
  std::string blob = BuildAppRootfsForApp("customapp", false);
  auto spec = guestos::ParseRootfs(blob);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec.value().count("/bin/customapp"));
}

}  // namespace
}  // namespace lupine::apps

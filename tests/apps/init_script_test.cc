#include "src/apps/init_script.h"

#include <gtest/gtest.h>

#include "src/apps/manifest.h"

namespace lupine::apps {
namespace {

TEST(InitScriptTest, GeneratedScriptShape) {
  ContainerImage image = MakeAlpineImage(*FindManifest("redis"));
  std::string script = GenerateInitScript(image);
  EXPECT_EQ(script.rfind("#!lupine-init", 0), 0u);
  EXPECT_NE(script.find("hostname redis"), std::string::npos);
  EXPECT_NE(script.find("mount proc /proc"), std::string::npos);
  EXPECT_NE(script.find("mkdir /data"), std::string::npos);
  EXPECT_NE(script.find("env REDIS_VERSION=5.0.5"), std::string::npos);
  EXPECT_NE(script.find("exec /bin/redis /etc/redis.conf"), std::string::npos);
}

TEST(InitScriptTest, ExecIsLastLine) {
  ContainerImage image = MakeAlpineImage(*FindManifest("nginx"));
  std::string script = GenerateInitScript(image);
  size_t exec_pos = script.find("exec ");
  ASSERT_NE(exec_pos, std::string::npos);
  // Nothing but the trailing newline after the exec line.
  EXPECT_EQ(script.find('\n', exec_pos), script.size() - 1);
}

TEST(InitScriptTest, EntropyAndUlimitWhenRequested) {
  ContainerImage image = MakeAlpineImage(*FindManifest("postgres"));
  std::string script = GenerateInitScript(image);
  EXPECT_NE(script.find("entropy"), std::string::npos);

  ContainerImage nginx = MakeAlpineImage(*FindManifest("nginx"));
  EXPECT_NE(GenerateInitScript(nginx).find("ulimit nofile 65536"), std::string::npos);
}

TEST(InitScriptTest, MetadataDrivesEnv) {
  ContainerImage image;
  image.app = "custom";
  image.entrypoint = {"/bin/custom", "--flag"};
  image.env["A"] = "B";
  std::string script = GenerateInitScript(image);
  EXPECT_NE(script.find("env A=B"), std::string::npos);
  EXPECT_NE(script.find("exec /bin/custom --flag"), std::string::npos);
}

}  // namespace
}  // namespace lupine::apps

#include "src/apps/manifest.h"

#include <gtest/gtest.h>

#include "src/kconfig/presets.h"

namespace lupine::apps {
namespace {

TEST(ManifestTest, TwentyAppsInPopularityOrder) {
  const auto& manifests = Top20Manifests();
  ASSERT_EQ(manifests.size(), 20u);
  for (size_t i = 1; i < manifests.size(); ++i) {
    EXPECT_GE(manifests[i - 1].downloads_billions, manifests[i].downloads_billions)
        << manifests[i].name;
  }
}

TEST(ManifestTest, DownloadsCoverPaperTotals) {
  // The top 20 account for ~83% of all downloads; absolute figures from
  // Table 3 sum to ~16.5 billion.
  double total = 0;
  for (const auto& m : Top20Manifests()) {
    total += m.downloads_billions;
  }
  EXPECT_NEAR(total, 16.5, 1.0);
}

TEST(ManifestTest, RequiredOptionsMatchPresets) {
  for (const auto& m : Top20Manifests()) {
    EXPECT_EQ(m.required_options, kconfig::AppExtraOptions(m.name)) << m.name;
  }
}

TEST(ManifestTest, ServersHavePortsAndReadyLines) {
  for (const auto& m : Top20Manifests()) {
    if (m.kind == AppKind::kServer) {
      EXPECT_GT(m.listen_port, 0) << m.name;
    }
    EXPECT_FALSE(m.ready_line.empty()) << m.name;
  }
}

TEST(ManifestTest, FindByName) {
  const AppManifest* redis = FindManifest("redis");
  ASSERT_NE(redis, nullptr);
  EXPECT_EQ(redis->listen_port, 6379);
  EXPECT_EQ(FindManifest("no-such-app"), nullptr);
}

TEST(ManifestTest, PostgresForksWorkers) {
  const AppManifest* postgres = FindManifest("postgres");
  ASSERT_NE(postgres, nullptr);
  EXPECT_GT(postgres->forked_workers, 0);
}

TEST(ManifestTest, HelloWorldIsStatic) {
  const AppManifest* hello = FindManifest("hello-world");
  ASSERT_NE(hello, nullptr);
  EXPECT_TRUE(hello->static_binary);
  EXPECT_TRUE(hello->required_options.empty());
}

}  // namespace
}  // namespace lupine::apps

// The init-script interpreter executed inside a booted guest.
#include <gtest/gtest.h>

#include "src/apps/init_script.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::apps {
namespace {

using guestos::SyscallApi;
using guestos::testing::GuestFixture;

// Runs `script` as /sbin/custom-init in a fresh lupine-general guest.
struct InitRun {
  int exit_code = -1;
  std::string console;
};

InitRun RunScript(const std::string& script, GuestFixture& guest) {
  (void)guest.kernel->vfs().CreateFile("/sbin/custom-init", script, /*executable=*/true);
  InitRun result;
  guest.RunInGuest([&](SyscallApi& sys) {
    Status s = sys.Execve("/sbin/custom-init", {"/sbin/custom-init"});
    (void)s;  // Only returns on failure; exit code captured below.
  });
  result.console = guest.kernel->console().contents();
  return result;
}

TEST(InitRuntimeTest, FullScriptExecsApp) {
  GuestFixture guest;
  RunScript(
      "#!lupine-init\n"
      "hostname testbox\n"
      "mount proc /proc\n"
      "mkdir /var/run\n"
      "env GREETING=hi\n"
      "exec /bin/hello\n",
      guest);
  EXPECT_TRUE(guest.kernel->console().Contains("hello world"));
  EXPECT_TRUE(guest.kernel->vfs().Exists("/var/run"));
  EXPECT_TRUE(guest.kernel->vfs().Exists("/proc/meminfo"));
}

TEST(InitRuntimeTest, UnknownCommandAborts) {
  GuestFixture guest;
  RunScript("#!lupine-init\nfrobnicate /x\nexec /bin/hello\n", guest);
  EXPECT_TRUE(guest.kernel->console().Contains("unknown command 'frobnicate'"));
  EXPECT_FALSE(guest.kernel->console().Contains("hello world"));
}

TEST(InitRuntimeTest, FailedMountIsFatalWithDiagnostic) {
  GuestFixture guest(kconfig::LupineBase());  // No TMPFS.
  RunScript("#!lupine-init\nmount tmpfs /tmp\nexec /bin/hello\n", guest);
  EXPECT_TRUE(guest.kernel->console().Contains("unknown filesystem type 'tmpfs'"));
  EXPECT_FALSE(guest.kernel->console().Contains("hello world"));
}

TEST(InitRuntimeTest, MkdirExistingIsTolerated) {
  GuestFixture guest;
  RunScript("#!lupine-init\nmkdir /tmp\nexec /bin/hello\n", guest);
  EXPECT_TRUE(guest.kernel->console().Contains("hello world"));
}

TEST(InitRuntimeTest, ExecMissingBinaryReportsFailure) {
  GuestFixture guest;
  RunScript("#!lupine-init\nexec /bin/ghost\n", guest);
  EXPECT_TRUE(guest.kernel->console().Contains("init: exec /bin/ghost failed"));
}

TEST(InitRuntimeTest, EnvReachesTheProcess) {
  GuestFixture guest;
  (void)guest.kernel->vfs().CreateFile("/sbin/custom-init",
                                 "#!lupine-init\nenv MODE=fast\nenv DEBUG=0\nexec /bin/hello\n",
                                 /*executable=*/true);
  guestos::Process* seen = nullptr;
  guest.RunInGuest([&](SyscallApi& sys) {
    seen = sys.CurrentProcess();
    (void)sys.Execve("/sbin/custom-init", {"/sbin/custom-init"});
  });
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->env["MODE"], "fast");
  EXPECT_EQ(seen->env["DEBUG"], "0");
}

TEST(InitRuntimeTest, EntropyLineReadsUrandom) {
  GuestFixture guest;
  RunScript("#!lupine-init\nentropy\nexec /bin/hello\n", guest);
  EXPECT_TRUE(guest.kernel->console().Contains("hello world"));
}

}  // namespace
}  // namespace lupine::apps

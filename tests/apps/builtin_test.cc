#include "src/apps/builtin.h"

#include <gtest/gtest.h>

#include "src/apps/manifest.h"
#include "src/workload/app_bench.h"
#include "src/workload/spawn.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::apps {
namespace {

using guestos::SockDomain;
using guestos::SockType;
using guestos::SyscallApi;
using guestos::testing::GuestFixture;

TEST(BuiltinTest, AllTop20Registered) {
  RegisterBuiltinApps();
  const auto& registry = guestos::AppRegistry::Global();
  for (const auto& m : Top20Manifests()) {
    EXPECT_NE(registry.Find(m.name), nullptr) << m.name;
  }
  EXPECT_NE(registry.Find("lupine-init"), nullptr);
  EXPECT_NE(registry.Find("sh"), nullptr);
}

TEST(BuiltinTest, RedisServesGetAndSet) {
  GuestFixture guest;
  const guestos::AppMain* redis = guest.kernel->apps().Find("redis");
  ASSERT_NE(redis, nullptr);
  workload::SpawnProcess(*guest.kernel, "redis",
                         [redis](SyscallApi& sys) { (*redis)(sys, {"redis"}); });
  guest.kernel->Run();
  ASSERT_TRUE(guest.kernel->console().Contains("Ready to accept connections"));

  std::string set_reply;
  std::string get_reply;
  std::string miss_reply;
  workload::SpawnProcess(*guest.kernel, "client", [&](SyscallApi& sys) {
    auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sys.Connect(fd.value(), 6379, "").ok());
    (void)sys.Send(fd.value(), "SET greeting hello\r\n");
    set_reply = sys.Recv(fd.value(), 256).take();
    (void)sys.Send(fd.value(), "GET greeting\r\n");
    get_reply = sys.Recv(fd.value(), 256).take();
    (void)sys.Send(fd.value(), "GET missing\r\n");
    miss_reply = sys.Recv(fd.value(), 256).take();
  });
  guest.kernel->Run();
  EXPECT_EQ(set_reply, "+OK\r\n");
  EXPECT_EQ(get_reply, "$5\r\nhello\r\n");
  EXPECT_EQ(miss_reply, "$-1\r\n");
}

TEST(BuiltinTest, NginxServesHttp) {
  GuestFixture guest;
  const guestos::AppMain* nginx = guest.kernel->apps().Find("nginx");
  ASSERT_NE(nginx, nullptr);
  workload::SpawnProcess(*guest.kernel, "nginx",
                         [nginx](SyscallApi& sys) { (*nginx)(sys, {"nginx"}); });
  guest.kernel->Run();
  ASSERT_TRUE(guest.kernel->console().Contains("start worker processes"));

  std::string reply;
  workload::SpawnProcess(*guest.kernel, "client", [&](SyscallApi& sys) {
    auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sys.Connect(fd.value(), 80, "").ok());
    (void)sys.Send(fd.value(), "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    while (reply.size() < 600) {
      auto chunk = sys.Recv(fd.value(), 4096);
      if (!chunk.ok() || chunk.value().empty()) {
        break;
      }
      reply += chunk.value();
    }
  });
  guest.kernel->Run();
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("Content-Length: 612"), std::string::npos);
}

TEST(BuiltinTest, RedisFailsCleanlyOnLupineBase) {
  GuestFixture guest(kconfig::LupineBase());
  const guestos::AppMain* redis = guest.kernel->apps().Find("redis");
  int code = -1;
  workload::SpawnProcess(*guest.kernel, "redis",
                         [&, redis](SyscallApi& sys) { code = (*redis)(sys, {"redis"}); });
  guest.kernel->Run();
  EXPECT_EQ(code, 1);
  // First missing feature in redis's option order is FUTEX.
  EXPECT_TRUE(guest.kernel->console().Contains("futex facility"));
}

TEST(BuiltinTest, MemcachedSpeaksItsProtocol) {
  GuestFixture guest;
  const guestos::AppMain* memcached = guest.kernel->apps().Find("memcached");
  ASSERT_NE(memcached, nullptr);
  workload::SpawnProcess(*guest.kernel, "memcached",
                         [memcached](SyscallApi& sys) { (*memcached)(sys, {"memcached"}); });
  guest.kernel->Run();
  ASSERT_TRUE(guest.kernel->console().Contains("server listening"));

  std::string stored, value, deleted, miss, stats;
  workload::SpawnProcess(*guest.kernel, "client", [&](SyscallApi& sys) {
    auto fd = sys.Socket(SockDomain::kInet, SockType::kStream);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sys.Connect(fd.value(), 11211, "").ok());
    (void)sys.Send(fd.value(), "set k 0 0 5\r\nhello\r\n");
    stored = sys.Recv(fd.value(), 256).take();
    (void)sys.Send(fd.value(), "get k\r\n");
    value = sys.Recv(fd.value(), 256).take();
    (void)sys.Send(fd.value(), "delete k\r\n");
    deleted = sys.Recv(fd.value(), 256).take();
    (void)sys.Send(fd.value(), "get k\r\n");
    miss = sys.Recv(fd.value(), 256).take();
    (void)sys.Send(fd.value(), "stats\r\n");
    stats = sys.Recv(fd.value(), 512).take();
  });
  guest.kernel->Run();
  EXPECT_EQ(stored, "STORED\r\n");
  EXPECT_EQ(value, "VALUE k 0 5\r\nhello\r\nEND\r\n");
  EXPECT_EQ(deleted, "DELETED\r\n");
  EXPECT_EQ(miss, "END\r\n");
  EXPECT_NE(stats.find("STAT cmd_get 2"), std::string::npos);
  EXPECT_NE(stats.find("STAT get_hits 1"), std::string::npos);
}

TEST(BuiltinTest, GenericServerAnnouncesReadiness) {
  GuestFixture guest;
  const guestos::AppMain* mysql = guest.kernel->apps().Find("mysql");
  ASSERT_NE(mysql, nullptr);
  workload::SpawnProcess(*guest.kernel, "mysql",
                         [mysql](SyscallApi& sys) { (*mysql)(sys, {"mysql"}); });
  guest.kernel->Run();
  EXPECT_TRUE(guest.kernel->console().Contains("ready for connections"));
}

TEST(BuiltinTest, LanguageRuntimesExitZero) {
  for (const std::string app : {"golang", "python", "php"}) {
    GuestFixture guest;
    const guestos::AppMain* main_fn = guest.kernel->apps().Find(app);
    ASSERT_NE(main_fn, nullptr) << app;
    int code = -1;
    workload::SpawnProcess(
        *guest.kernel, app,
        [&, main_fn, app](SyscallApi& sys) { code = (*main_fn)(sys, {app}); });
    guest.kernel->Run();
    EXPECT_EQ(code, 0) << app << ": " << guest.kernel->console().contents();
  }
}

TEST(BuiltinTest, PostgresForksItsWorkers) {
  GuestFixture guest;
  const guestos::AppMain* postgres = guest.kernel->apps().Find("postgres");
  size_t procs_before = guest.kernel->ProcessCount();
  workload::SpawnProcess(*guest.kernel, "postgres",
                         [postgres](SyscallApi& sys) { (*postgres)(sys, {"postgres"}); });
  guest.kernel->Run();
  EXPECT_TRUE(guest.kernel->console().Contains("ready to accept connections"));
  // Main process + 4 background workers.
  EXPECT_GE(guest.kernel->ProcessCount(), procs_before + 5);
}

}  // namespace
}  // namespace lupine::apps

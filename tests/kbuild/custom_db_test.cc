// End-to-end with a user-defined option tree: Kconfig text -> OptionDb ->
// resolved config -> built image.
#include <gtest/gtest.h>

#include "src/kbuild/builder.h"
#include "src/kconfig/kconfig_lang.h"
#include "src/kconfig/resolver.h"

namespace lupine::kbuild {
namespace {

constexpr char kToyTree[] = R"(config CORE
	bool "core runtime"

config NETWORK
	bool "network stack"
	depends on CORE

config HTTP
	bool "http server"
	depends on NETWORK
	select CORE
)";

TEST(CustomDbTest, BuildFromParsedKconfigTree) {
  kconfig::OptionDb db;
  kconfig::KconfigParseOptions parse_options;
  parse_options.default_size = 100 * kKiB;
  auto added = kconfig::ParseKconfig(kToyTree, parse_options, db);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_EQ(added.value(), 3u);

  kconfig::Config config("toy");
  kconfig::Resolver resolver(db);
  ASSERT_TRUE(resolver.Enable(config, "HTTP").ok());
  EXPECT_EQ(config.EnabledCount(), 3u);  // HTTP + NETWORK + CORE.

  ImageBuilder builder(&db);
  auto image = builder.Build(config);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  // Core + 3 * 100 KiB, times the link factor.
  EXPECT_GT(image->size, ImageBuilder::CoreSize());
  EXPECT_LT(image->size, ImageBuilder::CoreSize() + 400 * kKiB);
  EXPECT_EQ(image->features.enabled_options, 3u);
}

TEST(CustomDbTest, ValidationUsesTheCustomTree) {
  kconfig::OptionDb db;
  ASSERT_TRUE(kconfig::ParseKconfig(kToyTree, {}, db).ok());
  kconfig::Config broken("broken");
  broken.Enable("HTTP");  // Missing NETWORK.
  ImageBuilder builder(&db);
  EXPECT_FALSE(builder.Build(broken).ok());
}

}  // namespace
}  // namespace lupine::kbuild

#include "src/kbuild/builder.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"

namespace lupine::kbuild {
namespace {

namespace n = kconfig::names;

KernelImage MustBuild(const kconfig::Config& config) {
  ImageBuilder builder;
  auto image = builder.Build(config);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return image.take();
}

TEST(BuilderTest, LupineBaseImageAround4MB) {
  KernelImage image = MustBuild(kconfig::LupineBase());
  // The paper reports a 4 MB image (abstract, Fig. 6).
  EXPECT_GT(image.size, 3 * kMiB);
  EXPECT_LT(image.size, 5 * kMiB);
}

TEST(BuilderTest, LupineBaseIsAboutASharedQuarterOfMicrovm) {
  KernelImage base = MustBuild(kconfig::LupineBase());
  KernelImage microvm = MustBuild(kconfig::MicrovmConfig());
  double ratio = static_cast<double>(base.size) / static_cast<double>(microvm.size);
  // "The lupine-base image is only 27% of the microVM image" (Section 4.2).
  EXPECT_GT(ratio, 0.22);
  EXPECT_LT(ratio, 0.32);
}

TEST(BuilderTest, AppSpecificKernelsWithin27To33Percent) {
  KernelImage microvm = MustBuild(kconfig::MicrovmConfig());
  for (const std::string app : {"redis", "nginx", "postgres", "mariadb"}) {
    auto config = kconfig::LupineForApp(app);
    ASSERT_TRUE(config.ok());
    KernelImage image = MustBuild(config.value());
    double ratio = static_cast<double>(image.size) / static_cast<double>(microvm.size);
    EXPECT_GT(ratio, 0.22) << app;
    EXPECT_LT(ratio, 0.36) << app;
  }
}

TEST(BuilderTest, TinyShrinksAroundSixPercent) {
  auto config = kconfig::LupineForApp("redis");
  ASSERT_TRUE(config.ok());
  KernelImage normal = MustBuild(config.value());
  kconfig::Config tiny_config = config.value();
  kconfig::ApplyTiny(tiny_config);
  KernelImage tiny = MustBuild(tiny_config);
  double shrink = 1.0 - static_cast<double>(tiny.size) / static_cast<double>(normal.size);
  // "the Lupine image shrinks by a further 6%" (Section 4.2).
  EXPECT_GT(shrink, 0.03);
  EXPECT_LT(shrink, 0.10);
}

TEST(BuilderTest, GeneralLargerThanAppSpecificButBounded) {
  auto redis = kconfig::LupineForApp("redis");
  ASSERT_TRUE(redis.ok());
  KernelImage app_image = MustBuild(redis.value());
  KernelImage general = MustBuild(kconfig::LupineGeneral());
  EXPECT_GT(general.size, app_image.size);
  // Still smaller than OSv (6.7 MB) and Rump (8.2 MB), Section 4.2.
  EXPECT_LT(general.size, static_cast<Bytes>(6.5 * kMiB));
}

TEST(BuilderTest, InvalidConfigRejected) {
  kconfig::Config broken;
  broken.Enable(n::kIpv6);  // Missing INET/NET.
  ImageBuilder builder;
  auto image = builder.Build(broken);
  EXPECT_FALSE(image.ok());
}

TEST(BuilderTest, ValidationCanBeDisabledForExperiments) {
  kconfig::Config broken;
  broken.Enable(n::kIpv6);
  ImageBuilder builder;
  BuildOptions options;
  options.validate = false;
  auto image = builder.Build(broken, options);
  EXPECT_TRUE(image.ok());
}

TEST(BuilderTest, SizeOfClassAccountsHardwareHeavily) {
  ImageBuilder builder;
  kconfig::Config microvm = kconfig::MicrovmConfig();
  Bytes hw = builder.SizeOfClass(microvm, kconfig::OptionClass::kHardware);
  Bytes base = builder.SizeOfClass(microvm, kconfig::OptionClass::kBase);
  EXPECT_GT(hw, 2 * kMiB);
  EXPECT_GT(base, kMiB);
}

TEST(BuilderTest, FeaturesDerivedDuringBuild) {
  auto config = kconfig::LupineForApp("redis");
  ASSERT_TRUE(config.ok());
  ASSERT_TRUE(kconfig::ApplyKml(*config).ok());
  KernelImage image = MustBuild(config.value());
  EXPECT_TRUE(image.features.kml);
  EXPECT_TRUE(image.features.futex);
  EXPECT_FALSE(image.features.smp);
}

}  // namespace
}  // namespace lupine::kbuild

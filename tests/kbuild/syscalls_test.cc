#include "src/kbuild/syscalls.h"

#include <gtest/gtest.h>

#include <set>

#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"

namespace lupine::kbuild {
namespace {

namespace n = kconfig::names;

TEST(SyscallsTest, Table1RowsPresent) {
  // Table 1 lists exactly 12 option rows; we add the two IPC gates.
  const auto& gates = SyscallGates();
  EXPECT_EQ(gates.size(), 14u);
  int table1 = 0;
  for (const auto& gate : gates) {
    std::string opt = gate.option;
    if (opt != n::kSysvipc && opt != n::kPosixMqueue) {
      ++table1;
    }
  }
  EXPECT_EQ(table1, 12);
}

TEST(SyscallsTest, EpollGatesItsFiveSyscalls) {
  kconfig::Config c;
  SyscallSet without = EnabledSyscalls(c);
  EXPECT_FALSE(without.test(static_cast<int>(Sys::kEpollCreate1)));
  EXPECT_FALSE(without.test(static_cast<int>(Sys::kEpollWait)));
  c.Enable(n::kEpoll);
  SyscallSet with = EnabledSyscalls(c);
  EXPECT_TRUE(with.test(static_cast<int>(Sys::kEpollCreate)));
  EXPECT_TRUE(with.test(static_cast<int>(Sys::kEpollCreate1)));
  EXPECT_TRUE(with.test(static_cast<int>(Sys::kEpollCtl)));
  EXPECT_TRUE(with.test(static_cast<int>(Sys::kEpollWait)));
  EXPECT_TRUE(with.test(static_cast<int>(Sys::kEpollPwait)));
}

TEST(SyscallsTest, CoreSyscallsAlwaysAvailable) {
  kconfig::Config empty;
  SyscallSet set = EnabledSyscalls(empty);
  EXPECT_TRUE(set.test(static_cast<int>(Sys::kRead)));
  EXPECT_TRUE(set.test(static_cast<int>(Sys::kWrite)));
  EXPECT_TRUE(set.test(static_cast<int>(Sys::kFork)));
  EXPECT_TRUE(set.test(static_cast<int>(Sys::kGetppid)));
  EXPECT_TRUE(set.test(static_cast<int>(Sys::kMmap)));
}

TEST(SyscallsTest, GatingOptionLookup) {
  EXPECT_STREQ(GatingOption(Sys::kFutex), n::kFutex);
  EXPECT_STREQ(GatingOption(Sys::kIoSubmit), n::kAio);
  EXPECT_STREQ(GatingOption(Sys::kShmget), n::kSysvipc);
  EXPECT_EQ(GatingOption(Sys::kRead), nullptr);
}

TEST(SyscallsTest, MicrovmEnablesEverything) {
  SyscallSet set = EnabledSyscalls(kconfig::MicrovmConfig());
  EXPECT_EQ(set.count(), static_cast<size_t>(kNumSyscalls));
}

TEST(SyscallsTest, LupineBaseDisablesAllGatedSyscalls) {
  SyscallSet set = EnabledSyscalls(kconfig::LupineBase());
  for (const auto& gate : SyscallGates()) {
    for (Sys sys : gate.syscalls) {
      EXPECT_FALSE(set.test(static_cast<int>(sys))) << SyscallName(sys);
    }
  }
}

TEST(SyscallsTest, NamesAreUnique) {
  std::set<std::string> names;
  for (int i = 0; i < kNumSyscalls; ++i) {
    names.insert(SyscallName(static_cast<Sys>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumSyscalls));
}

}  // namespace
}  // namespace lupine::kbuild

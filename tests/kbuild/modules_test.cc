// Loadable-module (=m) semantics: modules ship in the rootfs, not the
// kernel image, and require CONFIG_MODULES — the generality knob unikernel
// builds reject ("a single application facilitates the creation of a kernel
// that contains all functionality it needs at build time", Section 3.1.2).
#include <gtest/gtest.h>

#include "src/kbuild/builder.h"
#include "src/kconfig/dotconfig.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"

namespace lupine::kbuild {
namespace {

namespace n = kconfig::names;

TEST(ModulesTest, ModularOptionStaysOutOfTheImage) {
  kconfig::Config builtin_config = kconfig::MicrovmConfig();
  kconfig::Config modular_config = kconfig::MicrovmConfig();
  // IPV6 as a module instead of built-in.
  modular_config.SetValue(n::kIpv6, "m");

  ImageBuilder builder;
  auto builtin_image = builder.Build(builtin_config);
  auto modular_image = builder.Build(modular_config);
  ASSERT_TRUE(builtin_image.ok());
  ASSERT_TRUE(modular_image.ok()) << modular_image.status().ToString();

  EXPECT_LT(modular_image->size, builtin_image->size);
  EXPECT_EQ(modular_image->module_count, 1u);
  EXPECT_GT(modular_image->modules_size, 300 * kKiB);  // IPv6 is large.
  EXPECT_EQ(builtin_image->module_count, 0u);
}

TEST(ModulesTest, ModuleWithoutModulesSupportRejected) {
  kconfig::Config config = kconfig::LupineBase();  // MODULES removed.
  config.SetValue(n::kTmpfs, "m");
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  Status s = resolver.Validate(config);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CONFIG_MODULES"), std::string::npos);
}

TEST(ModulesTest, MicrovmAllowsModulesLupineDoesNot) {
  // microVM keeps CONFIG_MODULES; every Lupine flavour drops it.
  EXPECT_TRUE(kconfig::MicrovmConfig().IsEnabled(n::kModules));
  EXPECT_FALSE(kconfig::LupineBase().IsEnabled(n::kModules));
  EXPECT_FALSE(kconfig::LupineGeneral().IsEnabled(n::kModules));
}

TEST(ModulesTest, DotConfigPreservesModuleState) {
  kconfig::Config config = kconfig::MicrovmConfig();
  config.SetValue(n::kIpv6, "m");
  auto parsed = kconfig::ParseDotConfig(kconfig::ToDotConfig(config));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetValue(n::kIpv6), "m");
}

}  // namespace
}  // namespace lupine::kbuild

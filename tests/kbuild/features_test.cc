#include "src/kbuild/features.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"

namespace lupine::kbuild {
namespace {

namespace n = kconfig::names;

TEST(FeaturesTest, MicrovmFeatureSet) {
  KernelFeatures f = DeriveFeatures(kconfig::MicrovmConfig());
  EXPECT_TRUE(f.smp);
  EXPECT_TRUE(f.mitigations);
  EXPECT_TRUE(f.audit);
  EXPECT_TRUE(f.seccomp);
  EXPECT_TRUE(f.paravirt);
  EXPECT_FALSE(f.kml);
  EXPECT_FALSE(f.kpti);
  EXPECT_TRUE(f.futex);
  EXPECT_TRUE(f.sysvipc);
  EXPECT_TRUE(f.ipv6);
  EXPECT_TRUE(f.acpi);
  EXPECT_EQ(f.enabled_options, 833u);
}

TEST(FeaturesTest, LupineBaseDropsUnikernelUnnecessaries) {
  KernelFeatures f = DeriveFeatures(kconfig::LupineBase());
  EXPECT_FALSE(f.smp);
  EXPECT_FALSE(f.mitigations);
  EXPECT_FALSE(f.audit);
  EXPECT_FALSE(f.seccomp);
  EXPECT_FALSE(f.sysvipc);
  EXPECT_FALSE(f.futex);
  EXPECT_FALSE(f.acpi);
  EXPECT_TRUE(f.paravirt);
  EXPECT_TRUE(f.inet);
  EXPECT_TRUE(f.proc_fs);
  EXPECT_TRUE(f.ext2);
  EXPECT_EQ(f.enabled_options, 283u);
}

TEST(FeaturesTest, KmlVariant) {
  kconfig::Config config = kconfig::LupineBase();
  ASSERT_TRUE(kconfig::ApplyKml(config).ok());
  KernelFeatures f = DeriveFeatures(config);
  EXPECT_TRUE(f.kml);
  EXPECT_FALSE(f.paravirt);
}

TEST(FeaturesTest, CompileModeCarriedThrough) {
  kconfig::Config config = kconfig::LupineBase();
  kconfig::ApplyTiny(config);
  KernelFeatures f = DeriveFeatures(config);
  EXPECT_EQ(f.compile_mode, kconfig::CompileMode::kOs);
}

TEST(FeaturesTest, SyscallSetGatedByConfig) {
  KernelFeatures base = DeriveFeatures(kconfig::LupineBase());
  EXPECT_FALSE(base.HasSyscall(Sys::kFutex));
  EXPECT_TRUE(base.HasSyscall(Sys::kRead));

  auto redis = kconfig::LupineForApp("redis");
  ASSERT_TRUE(redis.ok());
  KernelFeatures f = DeriveFeatures(redis.value());
  EXPECT_TRUE(f.HasSyscall(Sys::kFutex));
  EXPECT_TRUE(f.HasSyscall(Sys::kEpollWait));
  // redis does not need AIO (Section 3.1.1).
  EXPECT_FALSE(f.HasSyscall(Sys::kIoSubmit));
}

TEST(FeaturesTest, OptionCategoryCounts) {
  KernelFeatures f = DeriveFeatures(kconfig::MicrovmConfig());
  EXPECT_GT(f.driver_options, 100u);
  EXPECT_GT(f.net_options, 100u);
  EXPECT_GT(f.fs_options, 50u);
  EXPECT_EQ(f.debug_options, 65u);
  EXPECT_EQ(f.crypto_options, 55u);
}

}  // namespace
}  // namespace lupine::kbuild

// Property tests on the image-size model.
#include <gtest/gtest.h>

#include "src/kbuild/builder.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/util/prng.h"

namespace lupine::kbuild {
namespace {

class SizeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SizeProperty, AddingOptionsNeverShrinksTheImage) {
  Prng rng(GetParam());
  const auto& all = kconfig::OptionDb::Linux40().options();
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  ImageBuilder builder;

  kconfig::Config config = kconfig::LupineBase();
  auto image = builder.Build(config);
  ASSERT_TRUE(image.ok());
  Bytes previous = image->size;

  for (int step = 0; step < 25; ++step) {
    const auto& option = all[rng.NextBelow(all.size())];
    auto enabled = resolver.Enable(config, option.name);
    if (!enabled.ok()) {
      continue;  // Conflicting option (e.g. KML without patch): skip.
    }
    auto next = builder.Build(config);
    ASSERT_TRUE(next.ok()) << option.name;
    EXPECT_GE(next->size, previous) << option.name;
    previous = next->size;
  }
}

TEST_P(SizeProperty, BuildsAreDeterministic) {
  Prng rng(GetParam() ^ 0xD00D);
  const auto& all = kconfig::OptionDb::Linux40().options();
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  kconfig::Config config = kconfig::LupineBase();
  for (int i = 0; i < 15; ++i) {
    (void)resolver.Enable(config, all[rng.NextBelow(all.size())].name);
  }
  ImageBuilder builder;
  auto a = builder.Build(config);
  auto b = builder.Build(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size, b->size);
  EXPECT_EQ(a->features.syscalls, b->features.syscalls);
}

TEST_P(SizeProperty, OsModeNeverLargerThanO2) {
  Prng rng(GetParam() ^ 0xF00D);
  const auto& all = kconfig::OptionDb::Linux40().options();
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  kconfig::Config config = kconfig::LupineBase();
  for (int i = 0; i < 10; ++i) {
    (void)resolver.Enable(config, all[rng.NextBelow(all.size())].name);
  }
  ImageBuilder builder;
  auto o2 = builder.Build(config);
  config.set_compile_mode(kconfig::CompileMode::kOs);
  auto os = builder.Build(config);
  ASSERT_TRUE(o2.ok());
  ASSERT_TRUE(os.ok());
  EXPECT_LE(os->size, o2->size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SizeProperty, ::testing::Values(7u, 11u, 17u, 23u, 31u));

TEST(SizeModelTest, ClassSizesSumToOptionTotal) {
  ImageBuilder builder;
  kconfig::Config microvm = kconfig::MicrovmConfig();
  Bytes by_class = 0;
  for (auto cls : {kconfig::OptionClass::kBase, kconfig::OptionClass::kAppNetwork,
                   kconfig::OptionClass::kAppFilesystem, kconfig::OptionClass::kAppSyscall,
                   kconfig::OptionClass::kAppCompression, kconfig::OptionClass::kAppCrypto,
                   kconfig::OptionClass::kAppDebug, kconfig::OptionClass::kAppOther,
                   kconfig::OptionClass::kMultiProcess, kconfig::OptionClass::kHardware}) {
    by_class += builder.SizeOfClass(microvm, cls);
  }
  auto image = builder.Build(microvm);
  ASSERT_TRUE(image.ok());
  // Image = (core + options) * link factor; class sum is pre-factor.
  EXPECT_GT(by_class, image->size - ImageBuilder::CoreSize() - kMiB);
  EXPECT_LT(static_cast<double>(image->size),
            static_cast<double>(ImageBuilder::CoreSize() + by_class));
}

}  // namespace
}  // namespace lupine::kbuild

#include "src/guestos/mem.h"

#include <gtest/gtest.h>

namespace lupine::guestos {
namespace {

TEST(MemoryManagerTest, AllocatesWithinLimit) {
  MemoryManager mm(MiB(1));
  EXPECT_TRUE(mm.AllocatePages(100, "test").ok());
  EXPECT_EQ(mm.used(), 100 * kPageSize);
  EXPECT_EQ(mm.available(), MiB(1) - 100 * kPageSize);
}

TEST(MemoryManagerTest, OomPastLimit) {
  MemoryManager mm(MiB(1));
  EXPECT_TRUE(mm.AllocatePages(256, "fill").ok());  // Exactly 1 MiB.
  Status s = mm.AllocatePages(1, "over");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.err(), Err::kNoMem);
}

TEST(MemoryManagerTest, PeakTracksHighWater) {
  MemoryManager mm(MiB(4));
  (void)mm.AllocatePages(100, "a");
  mm.FreePages(50);
  (void)mm.AllocatePages(10, "b");
  EXPECT_EQ(mm.peak(), 100 * kPageSize);
}

TEST(AddressSpaceTest, DemandPagingAllocatesOnTouch) {
  MemoryManager mm(MiB(64));
  AddressSpace as(&mm);
  auto vma = as.Map(MiB(1), VmaKind::kHeap, "heap");
  ASSERT_TRUE(vma.ok());
  Bytes pt_only = mm.used();
  EXPECT_LT(pt_only, 8 * kPageSize);  // Only page tables charged so far.

  auto faults = as.Touch(vma.value(), 0, 10 * kPageSize);
  ASSERT_TRUE(faults.ok());
  EXPECT_EQ(faults.value(), 10u);
  EXPECT_EQ(as.resident_pages(), 10u);

  // Re-touch: no new faults.
  faults = as.Touch(vma.value(), 0, 10 * kPageSize);
  ASSERT_TRUE(faults.ok());
  EXPECT_EQ(faults.value(), 0u);
}

TEST(AddressSpaceTest, TouchBeyondMappingFaults) {
  MemoryManager mm(MiB(64));
  AddressSpace as(&mm);
  auto vma = as.Map(kPageSize, VmaKind::kData, "one-page");
  ASSERT_TRUE(vma.ok());
  auto result = as.Touch(vma.value(), 2 * kPageSize, kPageSize);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.err(), Err::kFault);
}

TEST(AddressSpaceTest, UnmapReleasesMemory) {
  MemoryManager mm(MiB(64));
  AddressSpace as(&mm);
  auto vma = as.Map(MiB(1), VmaKind::kData, "tmp");
  ASSERT_TRUE(vma.ok());
  (void)as.Touch(vma.value(), 0, MiB(1));
  Bytes used = mm.used();
  EXPECT_GE(used, MiB(1));
  ASSERT_TRUE(as.Unmap(vma.value()).ok());
  EXPECT_LT(mm.used(), used / 2);
}

TEST(AddressSpaceTest, OomSurfacesThroughTouch) {
  MemoryManager mm(MiB(1));
  AddressSpace as(&mm);
  auto vma = as.Map(MiB(8), VmaKind::kHeap, "big");
  ASSERT_TRUE(vma.ok());
  auto result = as.Touch(vma.value(), 0, MiB(8));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.err(), Err::kNoMem);
}

TEST(AddressSpaceTest, ForkCopySharesTextChargesPageTables) {
  MemoryManager mm(MiB(64));
  AddressSpace parent(&mm);
  auto text = parent.Map(MiB(1), VmaKind::kText, "text", /*populate_now=*/true);
  ASSERT_TRUE(text.ok());
  auto heap = parent.Map(MiB(1), VmaKind::kHeap, "heap");
  ASSERT_TRUE(heap.ok());
  (void)parent.Touch(heap.value(), 0, 64 * kPageSize);

  Bytes before = mm.used();
  auto child = parent.ForkCopy();
  ASSERT_TRUE(child.ok());
  Bytes fork_cost = mm.used() - before;
  // Fork charges only page tables, far less than the resident set.
  EXPECT_LT(fork_cost, 16 * kPageSize);
  // Child sees the text resident (shared) but owns nothing.
  EXPECT_GE((*child)->resident_pages(), 256u);
}

TEST(AddressSpaceTest, ChildDestructionDoesNotDoubleFree) {
  MemoryManager mm(MiB(64));
  auto parent = std::make_unique<AddressSpace>(&mm);
  auto text = parent->Map(MiB(1), VmaKind::kText, "text", /*populate_now=*/true);
  ASSERT_TRUE(text.ok());
  Bytes with_parent = mm.used();
  {
    auto child = parent->ForkCopy();
    ASSERT_TRUE(child.ok());
  }
  // Child gone: only its page tables were released.
  EXPECT_LE(mm.used(), with_parent);
  EXPECT_GE(mm.used(), with_parent - 16 * kPageSize);
}

TEST(AddressSpaceTest, CowPagesRechargedInChild) {
  MemoryManager mm(MiB(64));
  AddressSpace parent(&mm);
  auto heap = parent.Map(MiB(1), VmaKind::kHeap, "heap");
  ASSERT_TRUE(heap.ok());
  (void)parent.Touch(heap.value(), 0, 16 * kPageSize);
  auto child = parent.ForkCopy();
  ASSERT_TRUE(child.ok());
  // The child's heap starts unpopulated (COW) and re-faults.
  auto faults = (*child)->Touch(heap.value(), 0, 16 * kPageSize);
  ASSERT_TRUE(faults.ok());
  EXPECT_EQ(faults.value(), 16u);
}

TEST(PagesForBytesTest, RoundsUp) {
  EXPECT_EQ(PagesForBytes(0), 0u);
  EXPECT_EQ(PagesForBytes(1), 1u);
  EXPECT_EQ(PagesForBytes(kPageSize), 1u);
  EXPECT_EQ(PagesForBytes(kPageSize + 1), 2u);
}

}  // namespace
}  // namespace lupine::guestos

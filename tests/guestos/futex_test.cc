#include "src/guestos/futex.h"

#include <gtest/gtest.h>

#include "src/kbuild/features.h"

namespace lupine::guestos {
namespace {

struct FutexFixture {
  FutexFixture() : sched(&clock, &DefaultCostModel(), &features), futexes(&sched) {}
  VirtualClock clock;
  kbuild::KernelFeatures features;
  Scheduler sched;
  FutexTable futexes;
};

TEST(FutexTest, ValueMismatchReturnsEagain) {
  FutexFixture f;
  int word = 5;
  Status result;
  f.sched.Spawn(nullptr, [&] { result = f.futexes.Wait(&word, 4); });
  f.sched.Run();
  EXPECT_EQ(result.err(), Err::kAgain);
}

TEST(FutexTest, WaitAndWake) {
  FutexFixture f;
  int word = 0;
  std::vector<int> order;
  f.sched.Spawn(nullptr, [&] {
    order.push_back(1);
    Status s = f.futexes.Wait(&word, 0);
    EXPECT_TRUE(s.ok());
    order.push_back(3);
  });
  f.sched.Spawn(nullptr, [&] {
    order.push_back(2);
    word = 1;
    EXPECT_EQ(f.futexes.Wake(&word, 1), 1);
  });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FutexTest, WakeWithoutWaitersIsZero) {
  FutexFixture f;
  int word = 0;
  f.sched.Spawn(nullptr, [&] { EXPECT_EQ(f.futexes.Wake(&word, 10), 0); });
  f.sched.Run();
}

TEST(FutexTest, TimeoutExpires) {
  FutexFixture f;
  int word = 0;
  Status result;
  f.sched.Spawn(nullptr, [&] { result = f.futexes.Wait(&word, 0, Millis(2)); });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_EQ(result.err(), Err::kTimedOut);
  EXPECT_GE(f.clock.now(), Millis(2));
}

TEST(FutexTest, WakeCountLimitsWokenThreads) {
  FutexFixture f;
  int word = 0;
  int woke = 0;
  for (int i = 0; i < 4; ++i) {
    f.sched.Spawn(nullptr, [&] {
      if (f.futexes.Wait(&word, 0).ok()) {
        ++woke;
      }
    });
  }
  f.sched.Spawn(nullptr, [&] { EXPECT_EQ(f.futexes.Wake(&word, 2), 2); });
  EXPECT_EQ(f.sched.Run(), 2u);  // Two still blocked.
  EXPECT_EQ(woke, 2);
}

TEST(FutexTest, DistinctWordsDistinctQueues) {
  FutexFixture f;
  int a = 0;
  int b = 0;
  bool a_woken = false;
  f.sched.Spawn(nullptr, [&] { a_woken = f.futexes.Wait(&a, 0).ok(); });
  f.sched.Spawn(nullptr, [&] {
    f.futexes.Wake(&b, 1);  // Wrong word: nobody wakes.
    f.futexes.Wake(&a, 1);
  });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_TRUE(a_woken);
}

TEST(FutexTest, EmptyBucketsAreReclaimed) {
  FutexFixture f;
  int word = 0;
  f.sched.Spawn(nullptr, [&] { (void)f.futexes.Wait(&word, 0); });
  f.sched.Spawn(nullptr, [&] { f.futexes.Wake(&word, 1); });
  f.sched.Run();
  EXPECT_EQ(f.futexes.BucketCount(), 0u);
}

}  // namespace
}  // namespace lupine::guestos

#include "src/guestos/console.h"

#include <gtest/gtest.h>

namespace lupine::guestos {
namespace {

TEST(ConsoleTest, AccumulatesWrites) {
  Console console;
  console.Write("line one\n");
  console.Write("line two\n");
  EXPECT_EQ(console.contents(), "line one\nline two\n");
}

TEST(ConsoleTest, LinesSplit) {
  Console console;
  console.Write("a\nb\n");
  console.Write("c");
  auto lines = console.Lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[2], "c");
}

TEST(ConsoleTest, ContainsAndClear) {
  Console console;
  console.Write("epoll_create1 failed: function not implemented\n");
  EXPECT_TRUE(console.Contains("epoll_create1"));
  EXPECT_FALSE(console.Contains("futex"));
  console.Clear();
  EXPECT_FALSE(console.Contains("epoll_create1"));
  EXPECT_TRUE(console.contents().empty());
}

TEST(ConsoleTest, PartialWritesJoinAcrossCalls) {
  Console console;
  console.Write("Ready to ");
  console.Write("accept connections\n");
  EXPECT_TRUE(console.Contains("Ready to accept connections"));
}

}  // namespace
}  // namespace lupine::guestos

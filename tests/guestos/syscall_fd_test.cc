// Syscall-layer edge cases: epoll timeouts, eventfd semantics, dup sharing,
// fd-factory teardown, bad descriptors.
#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"
#include "src/kconfig/resolver.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::guestos {
namespace {

using testing::GuestFixture;

TEST(SyscallFdTest, EpollWaitTimesOutEmptyHanded) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto ep = sys.EpollCreate1();
    ASSERT_TRUE(ep.ok());
    Nanos before = guest.kernel->clock().now();
    auto ready = sys.EpollWait(ep.value(), 8, Millis(5));
    ASSERT_TRUE(ready.ok());
    EXPECT_TRUE(ready.value().empty());
    EXPECT_GE(guest.kernel->clock().now() - before, Millis(5));
  });
}

TEST(SyscallFdTest, EpollSeesEventfdAndPipe) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto ep = sys.EpollCreate1();
    auto efd = sys.Eventfd();
    auto pipe_fds = sys.Pipe();
    ASSERT_TRUE(ep.ok());
    ASSERT_TRUE(efd.ok());
    ASSERT_TRUE(pipe_fds.ok());
    (void)sys.EpollCtlAdd(ep.value(), efd.value());
    (void)sys.EpollCtlAdd(ep.value(), pipe_fds.value().first);

    // Nothing ready yet.
    auto ready = sys.EpollWait(ep.value(), 8, Micros(100));
    ASSERT_TRUE(ready.ok());
    EXPECT_TRUE(ready.value().empty());

    // Signal the eventfd and fill the pipe.
    (void)sys.Write(efd.value(), "x");
    (void)sys.Write(pipe_fds.value().second, "y");
    ready = sys.EpollWait(ep.value(), 8, Micros(100));
    ASSERT_TRUE(ready.ok());
    EXPECT_EQ(ready.value().size(), 2u);
  });
}

TEST(SyscallFdTest, EventfdReadResetsCounter) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto efd = sys.Eventfd(/*initial=*/1);
    ASSERT_TRUE(efd.ok());
    auto first = sys.Read(efd.value(), 8);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().size(), 8u);
    auto second = sys.Read(efd.value(), 8);
    EXPECT_EQ(second.err(), Err::kAgain);
  });
}

TEST(SyscallFdTest, DupSharesOffset) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto fd = sys.Open("/tmp/shared", /*create=*/true);
    ASSERT_TRUE(fd.ok());
    (void)sys.Write(fd.value(), "abcdef");
    auto dup = sys.Dup(fd.value());
    ASSERT_TRUE(dup.ok());
    // Both descriptors share one description: the offset is common.
    auto via_dup = sys.Read(dup.value(), 16);
    ASSERT_TRUE(via_dup.ok());
    EXPECT_TRUE(via_dup.value().empty());  // Offset at EOF after the write.
  });
}

TEST(SyscallFdTest, BadFdErrors) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    EXPECT_EQ(sys.Read(99, 10).err(), Err::kBadF);
    EXPECT_EQ(sys.Write(99, "x").err(), Err::kBadF);
    EXPECT_EQ(sys.Close(99).err(), Err::kBadF);
    EXPECT_EQ(sys.Send(99, "x").err(), Err::kBadF);
    EXPECT_EQ(sys.EpollCtlAdd(99, 98).err(), Err::kBadF);
  });
}

TEST(SyscallFdTest, SocketOpsOnNonSocketRejected) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto fd = sys.Open("/etc/hostname");
    ASSERT_TRUE(fd.ok());
    EXPECT_EQ(sys.Bind(fd.value(), 80, "").err(), Err::kNotSock);
    EXPECT_EQ(sys.Listen(fd.value(), 4).err(), Err::kNotSock);
    EXPECT_EQ(sys.Accept(fd.value()).err(), Err::kNotSock);
    EXPECT_EQ(sys.Connect(fd.value(), 80, "").err(), Err::kNotSock);
  });
}

TEST(SyscallFdTest, SocketPairCarriesData) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto pair = sys.SocketPair(SockType::kStream);
    ASSERT_TRUE(pair.ok());
    ASSERT_TRUE(sys.Send(pair.value().first, "ping").ok());
    auto got = sys.Recv(pair.value().second, 16);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), "ping");
  });
}

TEST(SyscallFdTest, SignalfdAndTimerfdCreateCloseable) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto sfd = sys.Signalfd();
    auto tfd = sys.TimerfdCreate();
    ASSERT_TRUE(sfd.ok());
    ASSERT_TRUE(tfd.ok());
    EXPECT_TRUE(sys.Close(sfd.value()).ok());
    EXPECT_TRUE(sys.Close(tfd.value()).ok());
  });
}

TEST(SyscallFdTest, ClosingSocketMidRecvWakesPeer) {
  GuestFixture guest;
  std::string got = "unset";
  guest.RunInGuest([&](SyscallApi& sys) {
    auto pair = sys.SocketPair(SockType::kStream);
    ASSERT_TRUE(pair.ok());
    auto [a, b] = pair.value();
    (void)sys.Fork([a](SyscallApi& child) -> int {
      child.Nanosleep(Millis(1));
      (void)child.Close(a);
      return 0;
    });
    auto data = sys.Recv(b, 16);  // Blocks until the child closes.
    ASSERT_TRUE(data.ok());
    got = data.value();
  });
  EXPECT_EQ(got, "");  // EOF.
}

TEST(SyscallFdTest, MqOpenGatedAndUsable) {
  GuestFixture base(kconfig::LupineBase());
  base.RunInGuest([&](SyscallApi& sys) {
    EXPECT_EQ(sys.MqOpen("/q").err(), Err::kNoSys);
  });
  kconfig::Config with = kconfig::LupineBase();
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  ASSERT_TRUE(resolver.Enable(with, kconfig::names::kPosixMqueue).ok());
  GuestFixture guest(with);
  guest.RunInGuest([&](SyscallApi& sys) {
    auto fd = sys.MqOpen("/q");
    ASSERT_TRUE(fd.ok());
    EXPECT_TRUE(sys.Close(fd.value()).ok());
  });
}

}  // namespace
}  // namespace lupine::guestos

#include "src/guestos/sched.h"

#include <gtest/gtest.h>

#include "src/kbuild/features.h"

namespace lupine::guestos {
namespace {

struct SchedFixture {
  SchedFixture() : sched(&clock, &DefaultCostModel(), &features) {}
  VirtualClock clock;
  kbuild::KernelFeatures features;
  Scheduler sched;
};

TEST(SchedTest, RunsSingleThreadToCompletion) {
  SchedFixture f;
  int x = 0;
  f.sched.Spawn(nullptr, [&] { x = 1; });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_EQ(x, 1);
}

TEST(SchedTest, InterleavesOnYield) {
  SchedFixture f;
  std::vector<int> order;
  f.sched.Spawn(nullptr, [&] {
    order.push_back(1);
    f.sched.YieldCurrent();
    order.push_back(3);
  });
  f.sched.Spawn(nullptr, [&] {
    order.push_back(2);
    f.sched.YieldCurrent();
    order.push_back(4);
  });
  f.sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SchedTest, SleepOrdersWakeups) {
  SchedFixture f;
  std::vector<int> order;
  f.sched.Spawn(nullptr, [&] {
    f.sched.SleepCurrent(Millis(10));
    order.push_back(2);
  });
  f.sched.Spawn(nullptr, [&] {
    f.sched.SleepCurrent(Millis(5));
    order.push_back(1);
  });
  f.sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_GE(f.clock.now(), Millis(10));
}

TEST(SchedTest, IdleJumpsClockToNextTimer) {
  SchedFixture f;
  f.sched.Spawn(nullptr, [&] { f.sched.SleepCurrent(Seconds(100)); });
  f.sched.Run();
  EXPECT_GE(f.clock.now(), Seconds(100));
}

TEST(SchedTest, WaitQueueBlocksUntilWoken) {
  SchedFixture f;
  WaitQueue wq(&f.sched);
  std::vector<int> order;
  f.sched.Spawn(nullptr, [&] {
    order.push_back(1);
    wq.Block();
    order.push_back(3);
  });
  f.sched.Spawn(nullptr, [&] {
    order.push_back(2);
    wq.Wake(1);
  });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedTest, BlockedForeverReported) {
  SchedFixture f;
  WaitQueue wq(&f.sched);
  f.sched.Spawn(nullptr, [&] { wq.Block(); });
  EXPECT_EQ(f.sched.Run(), 1u);
}

TEST(SchedTest, BlockTimeoutFires) {
  SchedFixture f;
  WaitQueue wq(&f.sched);
  bool woken_by_waker = true;
  f.sched.Spawn(nullptr, [&] { woken_by_waker = wq.Block(Millis(1)); });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_FALSE(woken_by_waker);
  EXPECT_GE(f.clock.now(), Millis(1));
}

TEST(SchedTest, WakeBeforeTimeoutReturnsTrue) {
  SchedFixture f;
  WaitQueue wq(&f.sched);
  bool woken = false;
  f.sched.Spawn(nullptr, [&] { woken = wq.Block(Seconds(10)); });
  f.sched.Spawn(nullptr, [&] { wq.Wake(1); });
  f.sched.Run();
  EXPECT_TRUE(woken);
  EXPECT_LT(f.clock.now(), Seconds(1));
}

TEST(SchedTest, WakeAllWakesEveryone) {
  SchedFixture f;
  WaitQueue wq(&f.sched);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    f.sched.Spawn(nullptr, [&] {
      wq.Block();
      ++done;
    });
  }
  f.sched.Spawn(nullptr, [&] { wq.WakeAll(); });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_EQ(done, 5);
}

TEST(SchedTest, ContextSwitchesCostTime) {
  SchedFixture f;
  for (int i = 0; i < 2; ++i) {
    f.sched.Spawn(nullptr, [&] {
      for (int j = 0; j < 10; ++j) {
        f.sched.YieldCurrent();
      }
    });
  }
  f.sched.Run();
  EXPECT_GT(f.sched.stats().context_switches, 10u);
  EXPECT_GT(f.clock.now(), 0);
}

TEST(SchedTest, SmpKernelSwitchesCostMore) {
  Nanos uni_time;
  Nanos smp_time;
  {
    SchedFixture f;
    for (int i = 0; i < 2; ++i) {
      f.sched.Spawn(nullptr, [&] {
        for (int j = 0; j < 50; ++j) {
          f.sched.YieldCurrent();
        }
      });
    }
    f.sched.Run();
    uni_time = f.clock.now();
  }
  {
    SchedFixture f;
    f.features.smp = true;
    for (int i = 0; i < 2; ++i) {
      f.sched.Spawn(nullptr, [&] {
        for (int j = 0; j < 50; ++j) {
          f.sched.YieldCurrent();
        }
      });
    }
    f.sched.Run();
    smp_time = f.clock.now();
  }
  EXPECT_GT(smp_time, uni_time);
}

TEST(SchedTest, ExitCurrentTerminatesThread) {
  SchedFixture f;
  bool after_exit = false;
  f.sched.Spawn(nullptr, [&] {
    f.sched.ExitCurrent();
    after_exit = true;  // Unreachable.
  });
  f.sched.Run();
  EXPECT_FALSE(after_exit);
  EXPECT_EQ(f.sched.alive_threads(), 0u);
}

TEST(SchedTest, ChargeCpuAccumulatesPerThread) {
  SchedFixture f;
  Thread* t = f.sched.Spawn(nullptr, [&] { f.sched.ChargeCpu(1234); });
  f.sched.Run();
  EXPECT_EQ(t->cpu_time, 1234);
}

TEST(SchedTest, ManyThreadsQuiesce) {
  SchedFixture f;
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    f.sched.Spawn(nullptr, [&, i] {
      f.sched.SleepCurrent(Micros(i * 3 % 97));
      ++done;
    });
  }
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_EQ(done, 200);
}

}  // namespace
}  // namespace lupine::guestos

#include "src/guestos/syscall_api.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"
#include "src/kconfig/resolver.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::guestos {
namespace {

namespace n = kconfig::names;
using testing::GuestFixture;

TEST(SyscallTest, GetppidReturnsParent) {
  GuestFixture guest;
  Result<int> ppid(0);
  guest.RunInGuest([&](SyscallApi& sys) { ppid = sys.Getppid(); });
  ASSERT_TRUE(ppid.ok());
  EXPECT_EQ(ppid.value(), 1);  // Spawned with ppid 1.
}

TEST(SyscallTest, SyscallsAdvanceVirtualTime) {
  GuestFixture guest;
  Nanos before = 0;
  Nanos after = 0;
  guest.RunInGuest([&](SyscallApi& sys) {
    before = guest.kernel->clock().now();
    for (int i = 0; i < 100; ++i) {
      (void)sys.Getppid();
    }
    after = guest.kernel->clock().now();
  });
  EXPECT_GT(after, before);
}

TEST(SyscallTest, EnosysWhenOptionCompiledOut) {
  GuestFixture guest(kconfig::LupineBase());  // No FUTEX/EPOLL/etc.
  guest.RunInGuest([&](SyscallApi& sys) {
    int word = 0;
    EXPECT_EQ(sys.FutexWait(&word, 0).err(), Err::kNoSys);
    EXPECT_EQ(sys.EpollCreate1().err(), Err::kNoSys);
    EXPECT_EQ(sys.Eventfd().err(), Err::kNoSys);
    EXPECT_EQ(sys.Shmget(kMiB).err(), Err::kNoSys);
    EXPECT_EQ(sys.Flock(0).err(), Err::kNoSys);
  });
}

TEST(SyscallTest, SocketFamiliesGatedByConfig) {
  GuestFixture guest(kconfig::LupineBase());  // INET yes; UNIX/IPV6/PACKET no.
  guest.RunInGuest([&](SyscallApi& sys) {
    EXPECT_TRUE(sys.Socket(SockDomain::kInet, SockType::kStream).ok());
    EXPECT_EQ(sys.Socket(SockDomain::kUnix, SockType::kStream).err(), Err::kAfNoSupport);
    EXPECT_EQ(sys.Socket(SockDomain::kInet6, SockType::kStream).err(), Err::kAfNoSupport);
    EXPECT_EQ(sys.Socket(SockDomain::kPacket, SockType::kDgram).err(), Err::kAfNoSupport);
  });
}

TEST(SyscallTest, TmpfsMountGated) {
  GuestFixture base(kconfig::LupineBase());
  base.RunInGuest([&](SyscallApi& sys) {
    EXPECT_FALSE(sys.Mount("tmpfs", "/tmp2").ok());
  });
  GuestFixture general;  // lupine-general has TMPFS.
  general.RunInGuest([&](SyscallApi& sys) {
    EXPECT_TRUE(sys.Mount("tmpfs", "/tmp2").ok());
  });
}

TEST(SyscallTest, DevZeroAndDevNull) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto zero = sys.Open("/dev/zero");
    ASSERT_TRUE(zero.ok());
    auto data = sys.Read(zero.value(), 16);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), std::string(16, '\0'));
    (void)sys.Close(zero.value());

    auto null = sys.Open("/dev/null");
    ASSERT_TRUE(null.ok());
    auto written = sys.Write(null.value(), "discarded");
    ASSERT_TRUE(written.ok());
    EXPECT_EQ(written.value(), 9u);
    auto eof = sys.Read(null.value(), 16);
    ASSERT_TRUE(eof.ok());
    EXPECT_TRUE(eof.value().empty());
  });
}

TEST(SyscallTest, StdoutGoesToConsole) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) { (void)sys.Write(1, "to the console\n"); });
  EXPECT_TRUE(guest.kernel->console().Contains("to the console"));
}

TEST(SyscallTest, FileReadWriteRoundTrip) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto fd = sys.Open("/tmp/data", /*create=*/true);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(sys.Write(fd.value(), "content").ok());
    (void)sys.Close(fd.value());
    auto rfd = sys.Open("/tmp/data");
    ASSERT_TRUE(rfd.ok());
    auto data = sys.Read(rfd.value(), 100);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), "content");
  });
}

TEST(SyscallTest, ForkRunsChildAndWaitReapsIt) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto pid = sys.Fork([](SyscallApi& child) -> int {
      (void)child.Write(1, "child ran\n");
      return 42;
    });
    ASSERT_TRUE(pid.ok());
    EXPECT_GT(pid.value(), 0);
    auto code = sys.Wait4(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 42);
    // Reaping twice is ECHILD.
    EXPECT_EQ(sys.Wait4(pid.value()).err(), Err::kChild);
  });
  EXPECT_TRUE(guest.kernel->console().Contains("child ran"));
}

TEST(SyscallTest, WaitAnyChild) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    (void)sys.Fork([](SyscallApi&) -> int { return 1; });
    (void)sys.Fork([](SyscallApi&) -> int { return 2; });
    auto a = sys.Wait4(-1);
    auto b = sys.Wait4(-1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value() + b.value(), 3);
    EXPECT_EQ(sys.Wait4(-1).err(), Err::kChild);
  });
}

TEST(SyscallTest, PipesCarryDataBetweenProcesses) {
  GuestFixture guest;
  std::string got;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto pipe_fds = sys.Pipe();
    ASSERT_TRUE(pipe_fds.ok());
    auto [rfd, wfd] = pipe_fds.value();
    (void)sys.Fork([wfd](SyscallApi& child) -> int {
      (void)child.Write(wfd, "via pipe");
      return 0;
    });
    auto data = sys.Read(rfd, 64);
    ASSERT_TRUE(data.ok());
    got = data.value();
  });
  EXPECT_EQ(got, "via pipe");
}

TEST(SyscallTest, EpollWaitReturnsReadySocket) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto listener = sys.Socket(SockDomain::kInet, SockType::kStream);
    ASSERT_TRUE(listener.ok());
    ASSERT_TRUE(sys.Bind(listener.value(), 1234, "").ok());
    ASSERT_TRUE(sys.Listen(listener.value(), 8).ok());
    auto ep = sys.EpollCreate1();
    ASSERT_TRUE(ep.ok());
    ASSERT_TRUE(sys.EpollCtlAdd(ep.value(), listener.value()).ok());

    (void)sys.Fork([](SyscallApi& child) -> int {
      auto fd = child.Socket(SockDomain::kInet, SockType::kStream);
      if (!fd.ok()) {
        return 1;
      }
      (void)child.Connect(fd.value(), 1234, "");
      return 0;
    });

    auto ready = sys.EpollWait(ep.value(), 8);
    ASSERT_TRUE(ready.ok());
    ASSERT_EQ(ready.value().size(), 1u);
    EXPECT_EQ(ready.value()[0], listener.value());
  });
}

TEST(SyscallTest, ExecveReplacesImage) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto pid = sys.Fork([](SyscallApi& child) -> int {
      (void)child.Execve("/bin/hello", {"/bin/hello"});
      return 126;  // Only on failure.
    });
    ASSERT_TRUE(pid.ok());
    auto code = sys.Wait4(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 0);
  });
  EXPECT_TRUE(guest.kernel->console().Contains("hello world"));
}

TEST(SyscallTest, ExecveMissingBinaryFails) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    Status s = sys.Execve("/bin/nonexistent", {});
    EXPECT_EQ(s.err(), Err::kNoEnt);
  });
}

TEST(SyscallTest, BrkAndTouchHeapAllocate) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    Bytes before = guest.kernel->mm().used();
    ASSERT_TRUE(sys.BrkGrow(MiB(1)).ok());
    ASSERT_TRUE(sys.TouchHeap(0, MiB(1)).ok());
    EXPECT_GE(guest.kernel->mm().used(), before + MiB(1));
  });
}

TEST(SyscallTest, UnameReportsKmlFlavour) {
  kconfig::Config config = kconfig::LupineGeneral();
  ASSERT_TRUE(kconfig::ApplyKml(config).ok());
  GuestFixture guest(config);
  std::string uname;
  guest.RunInGuest([&](SyscallApi& sys) { uname = sys.Uname().take(); });
  EXPECT_NE(uname.find("-kml"), std::string::npos);
}

// --- Transition pricing --------------------------------------------------------

Nanos NullSyscallCost(const kconfig::Config& config, bool kml_process = true) {
  GuestFixture guest(config);
  Nanos elapsed = 0;
  workload::SpawnOptions options;
  options.kml_libc = kml_process;
  guest.RunInGuest(
      [&](SyscallApi& sys) {
        Nanos t0 = guest.kernel->clock().now();
        for (int i = 0; i < 1000; ++i) {
          (void)sys.Getppid();
        }
        elapsed = guest.kernel->clock().now() - t0;
      },
      options);
  return elapsed / 1000;
}

TEST(SyscallTest, KmlEliminatesTransitionCost) {
  kconfig::Config nokml = kconfig::LupineGeneral();
  kconfig::Config kml = kconfig::LupineGeneral();
  ASSERT_TRUE(kconfig::ApplyKml(kml).ok());
  Nanos cost_nokml = NullSyscallCost(nokml);
  Nanos cost_kml = NullSyscallCost(kml);
  // ~40% improvement on the null syscall (Section 4.5).
  double improvement = 1.0 - static_cast<double>(cost_kml) / cost_nokml;
  EXPECT_GT(improvement, 0.30);
  EXPECT_LT(improvement, 0.50);
}

TEST(SyscallTest, UnpatchedLibcGetsNoKmlBenefit) {
  kconfig::Config kml = kconfig::LupineGeneral();
  ASSERT_TRUE(kconfig::ApplyKml(kml).ok());
  Nanos patched = NullSyscallCost(kml, /*kml_process=*/true);
  Nanos unpatched = NullSyscallCost(kml, /*kml_process=*/false);
  EXPECT_GT(unpatched, patched);
}

TEST(SyscallTest, KptiMakesSyscallsDramaticallySlower) {
  kconfig::Config plain = kconfig::LupineGeneral();
  kconfig::Config kpti = kconfig::LupineGeneral();
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  ASSERT_TRUE(resolver.Enable(kpti, n::kKpti).ok());
  Nanos cost_plain = NullSyscallCost(plain);
  Nanos cost_kpti = NullSyscallCost(kpti);
  // "we measured a 10x slowdown in system call latency" (Section 3.1.2):
  // the transition itself is 10x; the whole null call lands well above 3x.
  EXPECT_GT(cost_kpti, cost_plain * 3);
}

TEST(SyscallTest, MicrovmSyscallsSlowerThanLupine) {
  Nanos microvm = NullSyscallCost(kconfig::MicrovmConfig(), /*kml_process=*/false);
  Nanos lupine = NullSyscallCost(kconfig::LupineGeneral(), /*kml_process=*/false);
  EXPECT_GT(microvm, lupine);
}

}  // namespace
}  // namespace lupine::guestos

#include "src/guestos/vfs.h"

#include <gtest/gtest.h>

namespace lupine::guestos {
namespace {

TEST(VfsTest, RootExists) {
  Vfs vfs;
  auto root = vfs.Resolve("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->type, InodeType::kDir);
}

TEST(VfsTest, CreateAndResolveFile) {
  Vfs vfs;
  ASSERT_TRUE(vfs.CreateDir("/etc").ok());
  ASSERT_TRUE(vfs.CreateFile("/etc/hostname", "lupine\n").ok());
  auto inode = vfs.Resolve("/etc/hostname");
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode.value()->data, "lupine\n");
}

TEST(VfsTest, MissingPathIsEnoent) {
  Vfs vfs;
  auto inode = vfs.Resolve("/no/such/file");
  EXPECT_FALSE(inode.ok());
  EXPECT_EQ(inode.err(), Err::kNoEnt);
}

TEST(VfsTest, MkdirPCreatesIntermediates) {
  Vfs vfs;
  ASSERT_TRUE(vfs.CreateDir("/var/lib/redis/data").ok());
  EXPECT_TRUE(vfs.Exists("/var"));
  EXPECT_TRUE(vfs.Exists("/var/lib/redis"));
}

TEST(VfsTest, DotAndDotDotNormalized) {
  Vfs vfs;
  (void)vfs.CreateDir("/a/b");
  (void)vfs.CreateFile("/a/b/f", "x");
  EXPECT_TRUE(vfs.Resolve("/a/./b/f").ok());
  EXPECT_TRUE(vfs.Resolve("/a/b/../b/f").ok());
  EXPECT_TRUE(vfs.Resolve("/../a/b/f").ok());
}

TEST(VfsTest, SymlinksFollowed) {
  Vfs vfs;
  (void)vfs.CreateDir("/lib");
  (void)vfs.CreateFile("/lib/libc.so.6", "libc");
  ASSERT_TRUE(vfs.CreateSymlink("/lib/libc.so", "/lib/libc.so.6").ok());
  auto inode = vfs.Resolve("/lib/libc.so");
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode.value()->data, "libc");
}

TEST(VfsTest, SymlinkLoopsDetected) {
  Vfs vfs;
  ASSERT_TRUE(vfs.CreateSymlink("/a", "/b").ok());
  ASSERT_TRUE(vfs.CreateSymlink("/b", "/a").ok());
  auto inode = vfs.Resolve("/a");
  EXPECT_FALSE(inode.ok());
}

TEST(VfsTest, UnlinkRemovesFiles) {
  Vfs vfs;
  (void)vfs.CreateFile("/junk", "x");
  EXPECT_TRUE(vfs.Unlink("/junk").ok());
  EXPECT_FALSE(vfs.Exists("/junk"));
  EXPECT_EQ(vfs.Unlink("/junk").err(), Err::kNoEnt);
}

TEST(VfsTest, UnlinkNonEmptyDirRefused) {
  Vfs vfs;
  (void)vfs.CreateDir("/d");
  (void)vfs.CreateFile("/d/f", "x");
  EXPECT_EQ(vfs.Unlink("/d").err(), Err::kNotEmpty);
}

TEST(VfsTest, DeviceNodes) {
  Vfs vfs;
  (void)vfs.CreateDir("/dev");
  ASSERT_TRUE(vfs.CreateDevice("/dev/null", DevId::kNull).ok());
  auto inode = vfs.Resolve("/dev/null");
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode.value()->type, InodeType::kCharDev);
  EXPECT_EQ(inode.value()->dev, DevId::kNull);
}

TEST(VfsTest, ProcMountWithoutSysctl) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("proc", "/proc").ok());
  EXPECT_TRUE(vfs.Exists("/proc/meminfo"));
  EXPECT_FALSE(vfs.Exists("/proc/sys"));
  EXPECT_TRUE(vfs.IsMounted("/proc"));
}

TEST(VfsTest, ProcSysctlPopulation) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("proc", "/proc").ok());
  auto proc = vfs.Resolve("/proc");
  ASSERT_TRUE(proc.ok());
  PopulateProcfs(*proc.value(), /*with_sysctl=*/true);
  EXPECT_TRUE(vfs.Exists("/proc/sys/kernel.pid_max"));
}

TEST(VfsTest, UnknownFilesystemTypeRejected) {
  Vfs vfs;
  Status s = vfs.Mount("zfs", "/zpool");
  EXPECT_FALSE(s.ok());
}

TEST(VfsTest, ResolveThroughFileIsNotDir) {
  Vfs vfs;
  (void)vfs.CreateFile("/f", "x");
  auto inode = vfs.Resolve("/f/sub");
  EXPECT_FALSE(inode.ok());
  EXPECT_EQ(inode.err(), Err::kNotDir);
}

}  // namespace
}  // namespace lupine::guestos

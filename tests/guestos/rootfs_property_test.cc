// Property test: the rootfs codec round-trips arbitrary content.
#include <gtest/gtest.h>

#include "src/guestos/rootfs.h"
#include "src/util/prng.h"

namespace lupine::guestos {
namespace {

std::string RandomBytes(Prng& rng, size_t max_len) {
  size_t len = rng.NextBelow(max_len);
  std::string out(len, '\0');
  for (auto& c : out) {
    c = static_cast<char>(rng.NextBelow(256));
  }
  return out;
}

std::string RandomPath(Prng& rng) {
  static const char* segments[] = {"bin", "lib", "etc", "usr", "var", "data",
                                   "app", "conf.d", "x86_64", ".hidden"};
  int depth = 1 + static_cast<int>(rng.NextBelow(4));
  std::string path;
  for (int d = 0; d < depth; ++d) {
    path += "/";
    path += segments[rng.NextBelow(std::size(segments))];
  }
  path += "/f" + std::to_string(rng.NextBelow(100000));
  return path;
}

class RootfsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RootfsProperty, RandomSpecsRoundTrip) {
  Prng rng(GetParam());
  FsSpec spec;
  int entries = 1 + static_cast<int>(rng.NextBelow(60));
  for (int i = 0; i < entries; ++i) {
    FsEntry entry;
    switch (rng.NextBelow(4)) {
      case 0:
        entry.type = InodeType::kDir;
        break;
      case 1:
        entry.type = InodeType::kSymlink;
        entry.symlink_target = RandomPath(rng);
        break;
      case 2:
        entry.type = InodeType::kCharDev;
        entry.dev = static_cast<DevId>(rng.NextBelow(5));
        break;
      default:
        entry.type = InodeType::kFile;
        entry.data = RandomBytes(rng, 4096);
        entry.executable = rng.NextBool(0.3);
        break;
    }
    spec[RandomPath(rng)] = entry;
  }

  auto parsed = ParseRootfs(FormatRootfs(spec));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), spec.size());
  for (const auto& [path, entry] : spec) {
    const auto it = parsed.value().find(path);
    ASSERT_NE(it, parsed.value().end()) << path;
    EXPECT_EQ(it->second.type, entry.type) << path;
    EXPECT_EQ(it->second.data, entry.data) << path;
    EXPECT_EQ(it->second.symlink_target, entry.symlink_target) << path;
    EXPECT_EQ(it->second.dev, entry.dev) << path;
    EXPECT_EQ(it->second.executable, entry.executable) << path;
  }
}

TEST_P(RootfsProperty, TruncationsNeverCrashTheParser) {
  Prng rng(GetParam() ^ 0x7777);
  FsSpec spec;
  FsEntry app_entry;
  app_entry.data = RandomBytes(rng, 2048);
  spec["/bin/app"] = app_entry;
  FsEntry conf_entry;
  conf_entry.data = RandomBytes(rng, 512);
  spec["/etc/conf"] = conf_entry;
  std::string blob = FormatRootfs(spec);
  for (int i = 0; i < 40; ++i) {
    size_t cut = rng.NextBelow(blob.size());
    auto parsed = ParseRootfs(blob.substr(0, cut));
    // Either cleanly rejected or (cut == full prefix of fewer entries) OK;
    // never a crash. Any success must contain only valid entries.
    if (parsed.ok()) {
      EXPECT_LE(parsed.value().size(), spec.size());
    }
  }
}

TEST_P(RootfsProperty, MountedTreeMatchesSpec) {
  Prng rng(GetParam() ^ 0x1234);
  FsSpec spec;
  for (int i = 0; i < 20; ++i) {
    FsEntry entry;
    entry.type = InodeType::kFile;
    entry.data = RandomBytes(rng, 256);
    spec[RandomPath(rng)] = entry;
  }
  Vfs vfs;
  ASSERT_TRUE(MountRootfs(spec, vfs).ok());
  for (const auto& [path, entry] : spec) {
    auto inode = vfs.Resolve(path);
    ASSERT_TRUE(inode.ok()) << path;
    EXPECT_EQ(inode.value()->data, entry.data) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RootfsProperty, ::testing::Values(42u, 43u, 44u, 45u));

}  // namespace
}  // namespace lupine::guestos

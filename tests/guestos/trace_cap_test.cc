#include "src/guestos/trace.h"

#include <gtest/gtest.h>

namespace lupine::guestos {
namespace {

TEST(TraceCapTest, DefaultCapacityIsBounded) {
  TraceLog log;
  EXPECT_EQ(log.capacity(), TraceLog::kDefaultCapacity);
  EXPECT_EQ(log.dropped_total(), 0u);
}

TEST(TraceCapTest, SyscallBufferDropsOldestBeyondCap) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    log.RecordSyscall(i, kbuild::Sys::kRead);
  }
  EXPECT_EQ(log.syscalls().size(), 4u);
  EXPECT_EQ(log.dropped_syscalls(), 6u);
  // Drop-oldest: the recent window survives.
  EXPECT_EQ(log.syscalls().front().pid, 6);
  EXPECT_EQ(log.syscalls().back().pid, 9);
}

TEST(TraceCapTest, DistinctSyscallCountSurvivesDrops) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(2);
  log.RecordSyscall(1, kbuild::Sys::kRead);
  log.RecordSyscall(1, kbuild::Sys::kWrite);
  log.RecordSyscall(1, kbuild::Sys::kMmap);
  log.RecordSyscall(1, kbuild::Sys::kClose);
  EXPECT_EQ(log.syscalls().size(), 2u);
  // The set of numbers is exact even though the buffer windowed: manifest
  // generation must not lose options to trace pressure.
  EXPECT_EQ(log.distinct_syscall_count(), 4u);
}

TEST(TraceCapTest, FeatureAndPanicBuffersAreCappedToo) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    log.RecordFeature(1, TraceFeature::kAfUnix);
    log.RecordPanic(i, "panic " + std::to_string(i));
  }
  EXPECT_EQ(log.features().size(), 3u);
  EXPECT_EQ(log.dropped_features(), 2u);
  EXPECT_EQ(log.panics().size(), 3u);
  EXPECT_EQ(log.dropped_panics(), 2u);
  EXPECT_EQ(log.panics().front().reason, "panic 2");
  EXPECT_EQ(log.dropped_total(), 4u);
}

TEST(TraceCapTest, ShrinkingCapacityTrimsImmediately) {
  TraceLog log;
  log.set_enabled(true);
  for (int i = 0; i < 8; ++i) {
    log.RecordSyscall(i, kbuild::Sys::kRead);
  }
  log.set_capacity(2);
  EXPECT_EQ(log.syscalls().size(), 2u);
  EXPECT_EQ(log.dropped_syscalls(), 6u);
  EXPECT_EQ(log.syscalls().front().pid, 6);
}

TEST(TraceCapTest, ZeroCapacityMeansUnbounded) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(0);
  for (int i = 0; i < 1000; ++i) {
    log.RecordSyscall(i, kbuild::Sys::kRead);
  }
  EXPECT_EQ(log.syscalls().size(), 1000u);
  EXPECT_EQ(log.dropped_total(), 0u);
}

TEST(TraceCapTest, ClearResetsBuffersAndDropCounters) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(1);
  log.RecordSyscall(1, kbuild::Sys::kRead);
  log.RecordSyscall(2, kbuild::Sys::kWrite);
  EXPECT_GT(log.dropped_total(), 0u);
  log.Clear();
  EXPECT_EQ(log.syscalls().size(), 0u);
  EXPECT_EQ(log.dropped_total(), 0u);
  EXPECT_EQ(log.distinct_syscall_count(), 0u);
}

}  // namespace
}  // namespace lupine::guestos

// Property tests: the scheduler always quiesces, the clock is monotone,
// and accounting invariants hold under randomized thread behaviour.
#include <gtest/gtest.h>

#include "src/guestos/futex.h"
#include "src/guestos/sched.h"
#include "src/kbuild/features.h"
#include "src/util/prng.h"

namespace lupine::guestos {
namespace {

class SchedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedProperty, RandomSleepersAndYieldersQuiesce) {
  Prng rng(GetParam());
  VirtualClock clock;
  kbuild::KernelFeatures features;
  features.smp = rng.NextBool(0.5);
  Scheduler sched(&clock, &DefaultCostModel(), &features);

  int completed = 0;
  const int threads = 20 + static_cast<int>(rng.NextBelow(60));
  for (int t = 0; t < threads; ++t) {
    Nanos sleep_ns = static_cast<Nanos>(rng.NextBelow(Micros(500)));
    int yields = static_cast<int>(rng.NextBelow(8));
    int work = static_cast<int>(rng.NextBelow(2000));
    sched.Spawn(nullptr, [&, sleep_ns, yields, work] {
      sched.ChargeCpu(work);
      for (int y = 0; y < yields; ++y) {
        sched.YieldCurrent();
      }
      if (sleep_ns > 0) {
        sched.SleepCurrent(sleep_ns);
      }
      ++completed;
    });
  }
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(completed, threads);
  EXPECT_EQ(sched.alive_threads(), 0u);
}

TEST_P(SchedProperty, ClockIsMonotoneAcrossScheduling) {
  Prng rng(GetParam() ^ 0xC10C);
  VirtualClock clock;
  kbuild::KernelFeatures features;
  Scheduler sched(&clock, &DefaultCostModel(), &features);

  Nanos last_seen = 0;
  bool monotone = true;
  for (int t = 0; t < 16; ++t) {
    Nanos sleep_ns = static_cast<Nanos>(rng.NextBelow(Micros(100)));
    sched.Spawn(nullptr, [&, sleep_ns] {
      for (int i = 0; i < 5; ++i) {
        Nanos now = clock.now();
        monotone &= now >= last_seen;
        last_seen = now;
        sched.SleepCurrent(sleep_ns);
      }
    });
  }
  sched.Run();
  EXPECT_TRUE(monotone);
}

TEST_P(SchedProperty, CpuTimeNeverExceedsWallClock) {
  Prng rng(GetParam() ^ 0xBEEF);
  VirtualClock clock;
  kbuild::KernelFeatures features;
  Scheduler sched(&clock, &DefaultCostModel(), &features);

  std::vector<Thread*> threads;
  for (int t = 0; t < 12; ++t) {
    Nanos work = static_cast<Nanos>(rng.NextBelow(Micros(50)));
    threads.push_back(sched.Spawn(nullptr, [&, work] {
      sched.ChargeCpu(work);
      sched.YieldCurrent();
      sched.ChargeCpu(work / 2);
    }));
  }
  sched.Run();
  Nanos total_cpu = 0;
  for (Thread* thread : threads) {
    total_cpu += thread->cpu_time;
  }
  // One virtual CPU: summed thread time cannot exceed elapsed time.
  EXPECT_LE(total_cpu, clock.now());
}

TEST_P(SchedProperty, FutexPingPongAlwaysTerminates) {
  Prng rng(GetParam() ^ 0xF07E);
  VirtualClock clock;
  kbuild::KernelFeatures features;
  Scheduler sched(&clock, &DefaultCostModel(), &features);
  FutexTable futexes(&sched);

  const int pairs = 1 + static_cast<int>(rng.NextBelow(6));
  const int rounds = 10 + static_cast<int>(rng.NextBelow(40));
  std::vector<std::unique_ptr<int>> words;
  for (int p = 0; p < pairs; ++p) {
    words.push_back(std::make_unique<int>(0));
    int* word = words.back().get();
    for (int side = 0; side < 2; ++side) {
      sched.Spawn(nullptr, [&, word, side] {
        for (int r = 0; r < rounds; ++r) {
          while (*word % 2 != side) {
            (void)futexes.Wait(word, *word);
          }
          ++*word;
          futexes.Wake(word, 1);
        }
      });
    }
  }
  EXPECT_EQ(sched.Run(), 0u);
  for (const auto& word : words) {
    EXPECT_EQ(*word, 2 * rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace lupine::guestos

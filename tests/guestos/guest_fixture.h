// Shared fixture: a booted guest kernel for unit-testing subsystems.
#ifndef TESTS_GUESTOS_GUEST_FIXTURE_H_
#define TESTS_GUESTOS_GUEST_FIXTURE_H_

#include <memory>
#include <string>

#include "src/apps/builtin.h"
#include "src/apps/rootfs_builder.h"
#include "src/guestos/kernel.h"
#include "src/guestos/syscall_api.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/presets.h"
#include "src/workload/spawn.h"

namespace lupine::guestos::testing {

struct GuestFixture {
  explicit GuestFixture(kconfig::Config config = kconfig::LupineGeneral(),
                        Bytes memory = 512 * kMiB) {
    apps::RegisterBuiltinApps();
    kbuild::ImageBuilder builder;
    auto image = builder.Build(config);
    if (!image.ok()) {
      std::abort();
    }
    kernel = std::make_unique<Kernel>(image.take(), memory);
    Status s = kernel->Boot(apps::BuildBenchRootfs(/*kml_libc=*/config.kml_patch_applied()));
    if (!s.ok()) {
      std::abort();
    }
  }

  // Spawns a process running `body` and runs the guest to quiescence.
  void RunInGuest(std::function<void(SyscallApi&)> body,
                  const workload::SpawnOptions& options = {}) {
    workload::SpawnProcess(*kernel, "test", std::move(body), options);
    kernel->Run();
  }

  std::unique_ptr<Kernel> kernel;
};

}  // namespace lupine::guestos::testing

#endif  // TESTS_GUESTOS_GUEST_FIXTURE_H_

#include "src/guestos/loader.h"

#include <gtest/gtest.h>

namespace lupine::guestos {
namespace {

TEST(LoaderTest, FormatParseRoundTrip) {
  BinaryInfo info;
  info.app = "redis";
  info.libc = "musl-kml";
  info.interp = "/lib/ld-musl-x86_64.so.1";
  info.text_kb = 1700;
  info.data_kb = 425;
  info.bss_kb = 212;
  info.stack_kb = 256;
  auto parsed = ParseBinary(FormatBinary(info));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->app, "redis");
  EXPECT_EQ(parsed->libc, "musl-kml");
  EXPECT_EQ(parsed->interp, info.interp);
  EXPECT_EQ(parsed->text_kb, 1700u);
  EXPECT_TRUE(parsed->dynamic());
  EXPECT_TRUE(parsed->kml_libc());
}

TEST(LoaderTest, StaticBinaryHasNoInterp) {
  BinaryInfo info;
  info.app = "hello-world";
  info.libc = "static";
  auto parsed = ParseBinary(FormatBinary(info));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->dynamic());
  EXPECT_FALSE(parsed->kml_libc());
}

TEST(LoaderTest, StaticKmlRequiresRelink) {
  // "Statically linked binaries running on Lupine must be recompiled to
  // link against the patched libc" (Section 3.2): only the -kml flavour is
  // KML-capable.
  BinaryInfo relinked;
  relinked.app = "x";
  relinked.libc = "static-kml";
  EXPECT_TRUE(relinked.kml_libc());
}

TEST(LoaderTest, BadMagicIsExecFormatError) {
  auto parsed = ParseBinary("\x7f" "ELF real elf bytes");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.err(), Err::kInval);
}

TEST(LoaderTest, MissingAppEntryRejected) {
  auto parsed = ParseBinary("#LUPINE_ELF v1\nlibc=musl\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(LoaderTest, InitScriptDetected) {
  EXPECT_TRUE(IsInitScript("#!lupine-init\nexec /bin/app\n"));
  EXPECT_FALSE(IsInitScript("#LUPINE_ELF v1\napp=x\n"));
  EXPECT_FALSE(IsInitScript(""));
}

TEST(AppRegistryTest, RegisterAndFind) {
  AppRegistry registry;
  registry.Register("demo", [](SyscallApi&, const std::vector<std::string>&) { return 7; });
  EXPECT_NE(registry.Find("demo"), nullptr);
  EXPECT_EQ(registry.Find("missing"), nullptr);
  EXPECT_EQ(registry.Names().size(), 1u);
}

}  // namespace
}  // namespace lupine::guestos

// Single-process (library-OS style) kernels: fork really fails, threads
// still work — the mechanism behind Section 5's crash-on-fork story.
#include <gtest/gtest.h>

#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/presets.h"
#include "src/workload/spawn.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::guestos {
namespace {

using testing::GuestFixture;

// A lupine kernel with the unikernel single-process restriction applied.
std::unique_ptr<Kernel> SingleProcessKernel() {
  apps::RegisterBuiltinApps();
  kbuild::ImageBuilder builder;
  auto image = builder.Build(kconfig::LupineGeneral());
  EXPECT_TRUE(image.ok());
  kbuild::KernelImage modified = image.take();
  modified.features.single_process = true;
  auto kernel = std::make_unique<Kernel>(modified, 512 * kMiB);
  EXPECT_TRUE(kernel->Boot(apps::BuildBenchRootfs(false)).ok());
  return kernel;
}

TEST(UnikernelModeTest, ForkFailsWithDiagnostic) {
  auto kernel = SingleProcessKernel();
  Status fork_status;
  workload::SpawnProcess(*kernel, "app", [&](SyscallApi& sys) {
    auto pid = sys.Fork([](SyscallApi&) -> int { return 0; });
    fork_status = pid.status();
  });
  kernel->Run();
  EXPECT_EQ(fork_status.err(), Err::kNoSys);
  EXPECT_TRUE(kernel->console().Contains("fork: not supported"));
}

TEST(UnikernelModeTest, PostgresCrashesWhereLupineRunsIt) {
  // The same postgres model that runs on Lupine dies on a single-process
  // kernel when it forks its background workers.
  auto kernel = SingleProcessKernel();
  const AppMain* postgres = kernel->apps().Find("postgres");
  ASSERT_NE(postgres, nullptr);
  int exit_code = 0;
  workload::SpawnProcess(*kernel, "postgres", [&, postgres](SyscallApi& sys) {
    exit_code = (*postgres)(sys, {"postgres"});
  });
  kernel->Run();
  EXPECT_EQ(exit_code, 1);
  EXPECT_TRUE(kernel->console().Contains("could not fork worker process"));
  EXPECT_FALSE(kernel->console().Contains("ready to accept connections"));
}

TEST(UnikernelModeTest, ThreadsStillWork) {
  auto kernel = SingleProcessKernel();
  int done = 0;
  workload::SpawnProcess(*kernel, "app", [&](SyscallApi& sys) {
    for (int i = 0; i < 4; ++i) {
      auto tid = sys.SpawnThread([&](SyscallApi&) { ++done; });
      EXPECT_TRUE(tid.ok());
    }
  });
  kernel->Run();
  EXPECT_EQ(done, 4);
}

TEST(UnikernelModeTest, SingleProcessServersStillServe) {
  // redis never forks: it is unikernel-compatible and runs fine.
  auto kernel = SingleProcessKernel();
  const AppMain* redis = kernel->apps().Find("redis");
  ASSERT_NE(redis, nullptr);
  workload::SpawnProcess(*kernel, "redis", [redis](SyscallApi& sys) {
    (*redis)(sys, {"redis"});
  });
  kernel->Run();
  EXPECT_TRUE(kernel->console().Contains("Ready to accept connections"));
}

}  // namespace
}  // namespace lupine::guestos

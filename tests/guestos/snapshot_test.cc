// Snapshot/restore of post-init guests. The restore contract is
// equivalence: a restored guest is byte-identical to a fresh boot of the
// same artifact (console, process table, per-syscall accounting, digest) —
// only its launch cost differs. The SnapshotStormTest suite is Boot-only
// (no fiber runs), matching the tsan filter convention.
#include "src/guestos/snapshot.h"

#include <gtest/gtest.h>

#include "src/core/multik.h"
#include "src/core/snapshot_cache.h"
#include "src/util/fault.h"
#include "src/vmm/vm.h"

namespace lupine::guestos {
namespace {

core::KernelCache& Cache() {
  static auto* cache = new core::KernelCache();
  return *cache;
}

constexpr Bytes kMemory = 128 * kMiB;

// Builds the app's artifact, boots one guest, and captures it.
Result<Snapshot> BootAndCapture(const std::string& app,
                                std::unique_ptr<vmm::Vm>* booted = nullptr) {
  auto artifact = Cache().GetOrBuild(app);
  if (!artifact.ok()) {
    return artifact.status();
  }
  auto vm = (*artifact)->Launch(kMemory);
  if (Status st = vm->Boot(); !st.ok()) {
    return st;
  }
  const std::string key = core::SnapshotCache::Key((*artifact)->fingerprint,
                                                   (*artifact)->rootfs_key, kMemory);
  auto snapshot = CaptureSnapshot(vm->kernel(), key, app, (*artifact)->kernel,
                                  (*artifact)->boot_plan, (*artifact)->rootfs);
  if (booted != nullptr) {
    *booted = std::move(vm);
  }
  return snapshot;
}

TEST(SnapshotStormTest, DigestIsStableAcrossIdenticalBoots) {
  auto artifact = Cache().GetOrBuild("redis");
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  auto a = (*artifact)->Launch(kMemory);
  auto b = (*artifact)->Launch(kMemory);
  ASSERT_TRUE(a->Boot().ok());
  ASSERT_TRUE(b->Boot().ok());
  EXPECT_EQ(KernelStateDigest(a->kernel()), KernelStateDigest(b->kernel()));
}

TEST(SnapshotStormTest, CaptureRequiresABootedGuest) {
  auto artifact = Cache().GetOrBuild("redis");
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  auto vm = (*artifact)->Launch(kMemory);  // Never booted.
  auto snapshot = CaptureSnapshot(vm->kernel(), "k", "redis", (*artifact)->kernel,
                                  (*artifact)->boot_plan, (*artifact)->rootfs);
  EXPECT_FALSE(snapshot.ok());
}

TEST(SnapshotStormTest, RestoreRebasesLaunchCostToRestoreNs) {
  std::unique_ptr<vmm::Vm> cold;
  auto snapshot = BootAndCapture("redis", &cold);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  auto restored = vmm::Vm::Restore(*snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE((*restored)->restored());
  EXPECT_FALSE(cold->restored());
  // The whole point: launch cost on the restore path is the modeled restore
  // cost, and the serving premise holds — under half a cold full boot.
  EXPECT_EQ((*restored)->boot_report().to_init, snapshot->restore_ns);
  EXPECT_LT((*restored)->boot_report().to_init, cold->boot_report().to_init / 2);
  // The restored timeline starts at restore_ns, not at the replayed boot's
  // virtual end.
  EXPECT_EQ((*restored)->kernel().clock().now(), snapshot->restore_ns);
}

TEST(SnapshotStormTest, RestoredGuestStateIsByteIdenticalToFreshBoot) {
  std::unique_ptr<vmm::Vm> fresh;
  auto snapshot = BootAndCapture("nginx", &fresh);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  auto restored = vmm::Vm::Restore(*snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const Kernel& a = fresh->kernel();
  const Kernel& b = (*restored)->kernel();
  EXPECT_EQ(a.console().contents(), b.console().contents());
  EXPECT_EQ(a.ProcessCount(), b.ProcessCount());
  EXPECT_EQ(a.mm().used(), b.mm().used());
  const auto& sa = a.trace().syscall_stats();
  const auto& sb = b.trace().syscall_stats();
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].count, sb[i].count) << "syscall " << i;
    EXPECT_EQ(sa[i].total_ns, sb[i].total_ns) << "syscall " << i;
  }
  EXPECT_EQ(KernelStateDigest(a), KernelStateDigest(b));
}

TEST(SnapshotTest, RestoredGuestRunsWorkloadIdenticallyToFreshBoot) {
  std::unique_ptr<vmm::Vm> fresh;
  auto snapshot = BootAndCapture("hello-world", &fresh);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  auto restored = vmm::Vm::Restore(*snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  auto fresh_exit = fresh->RunToCompletion();
  auto restored_exit = (*restored)->RunToCompletion();
  ASSERT_TRUE(fresh_exit.ok()) << fresh_exit.status().ToString();
  ASSERT_TRUE(restored_exit.ok()) << restored_exit.status().ToString();
  EXPECT_EQ(*fresh_exit, *restored_exit);
  EXPECT_EQ(fresh->kernel().console().contents(),
            (*restored)->kernel().console().contents());
}

TEST(SnapshotStormTest, DigestMismatchFailsTheRestoreWithIo) {
  auto snapshot = BootAndCapture("redis");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  Snapshot tampered = *snapshot;
  tampered.state_digest ^= 0xdeadbeef;
  auto restored = vmm::Vm::Restore(tampered);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().err(), Err::kIo);
}

TEST(SnapshotStormTest, InjectedRestoreFaultFailsWithIo) {
  auto snapshot = BootAndCapture("redis");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  FaultPlan plan;
  plan.FireOnce(FaultSite::kSnapshotRestore, 1);
  FaultInjector injector(plan);
  auto failed = vmm::Vm::Restore(*snapshot, &injector);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().err(), Err::kIo);
  // The schedule fired once; the next restore on the same injector is clean.
  auto ok = vmm::Vm::Restore(*snapshot, &injector);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace lupine::guestos

// Per-syscall guest telemetry: the always-on count/latency tables in
// TraceLog and their surfacing as labeled host metrics.
#include <gtest/gtest.h>

#include "src/guestos/trace.h"
#include "src/telemetry/metrics.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::guestos {
namespace {

using testing::GuestFixture;

const SyscallStat& StatFor(const Kernel& kernel, kbuild::Sys nr) {
  return kernel.trace().syscall_stats()[static_cast<size_t>(nr)];
}

TEST(SyscallTelemetryTest, ScriptedWorkloadCountsExactly) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    for (int i = 0; i < 7; ++i) {
      (void)sys.Getppid();
    }
    auto fd = sys.Open("/dev/zero");
    ASSERT_TRUE(fd.ok());
    (void)sys.Read(fd.value(), 16);
    (void)sys.Read(fd.value(), 16);
    (void)sys.Close(fd.value());
  });
  const SyscallStat& getppid = StatFor(*guest.kernel, kbuild::Sys::kGetppid);
  EXPECT_EQ(getppid.count, 7u);
  EXPECT_GT(getppid.total_ns, 0u);
  EXPECT_GE(getppid.max_ns, getppid.min_ns);
  EXPECT_LE(getppid.min_ns * 7, getppid.total_ns);
  EXPECT_EQ(StatFor(*guest.kernel, kbuild::Sys::kRead).count, 2u);
  EXPECT_EQ(StatFor(*guest.kernel, kbuild::Sys::kClose).count, 1u);
  EXPECT_GE(StatFor(*guest.kernel, kbuild::Sys::kOpen).count, 1u);
}

TEST(SyscallTelemetryTest, AccountingIsOnEvenWithEventTracingOff) {
  GuestFixture guest;
  ASSERT_FALSE(guest.kernel->trace().enabled());  // Event tracing is opt-in.
  guest.RunInGuest([&](SyscallApi& sys) { (void)sys.Getppid(); });
  EXPECT_GE(guest.kernel->trace().accounted_syscalls(), 1u);
  EXPECT_EQ(StatFor(*guest.kernel, kbuild::Sys::kGetppid).count, 1u);
}

TEST(SyscallTelemetryTest, LatencyCoversBlockedTime) {
  // Nanosleep blocks inside the call: its accounted latency must dwarf a
  // non-blocking syscall's.
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    (void)sys.Getppid();
    (void)sys.Nanosleep(Millis(5));
  });
  const SyscallStat& sleep = StatFor(*guest.kernel, kbuild::Sys::kNanosleep);
  ASSERT_EQ(sleep.count, 1u);
  EXPECT_GE(sleep.total_ns, static_cast<uint64_t>(Millis(5)));
  EXPECT_LT(StatFor(*guest.kernel, kbuild::Sys::kGetppid).total_ns, sleep.total_ns);
}

TEST(SyscallTelemetryTest, PublishedHistogramsKeepCountMinMeanMaxExact) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    for (int i = 0; i < 5; ++i) {
      (void)sys.Getppid();
    }
  });
  const SyscallStat& stat = StatFor(*guest.kernel, kbuild::Sys::kGetppid);
  ASSERT_EQ(stat.count, 5u);

  telemetry::MetricRegistry registry;
  PublishSyscallMetrics(guest.kernel->trace(), registry, "test-app", /*kml=*/false);
  telemetry::Labels labels = {
      {"app", "test-app"}, {"kml", "false"}, {"syscall", "getppid"}};
  EXPECT_EQ(registry.GetCounter("guest.syscall_count", labels).value(), 5u);
  const auto summary = registry.GetHistogram("guest.syscall_ns", labels).Snapshot();
  EXPECT_EQ(summary.count, 5u);
  EXPECT_DOUBLE_EQ(summary.min, static_cast<double>(stat.min_ns));
  EXPECT_DOUBLE_EQ(summary.max, static_cast<double>(stat.max_ns));
  EXPECT_DOUBLE_EQ(summary.sum, static_cast<double>(stat.total_ns));
}

TEST(SyscallTelemetryTest, PublishSkipsUninvokedSyscalls) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) { (void)sys.Getppid(); });
  telemetry::MetricRegistry registry;
  PublishSyscallMetrics(guest.kernel->trace(), registry, "app", /*kml=*/true);
  const auto snapshot = registry.Collect();
  for (const auto& counter : snapshot.counters) {
    EXPECT_GT(counter.value, 0u) << counter.name;
  }
  // The kml label rides on every series.
  telemetry::Labels labels = {{"app", "app"}, {"kml", "true"}, {"syscall", "getppid"}};
  EXPECT_GE(registry.GetCounter("guest.syscall_count", labels).value(), 1u);
}

TEST(SyscallTelemetryTest, ClearResetsTheTables) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) { (void)sys.Getppid(); });
  EXPECT_GT(guest.kernel->trace().accounted_syscalls(), 0u);
  guest.kernel->trace().Clear();
  EXPECT_EQ(guest.kernel->trace().accounted_syscalls(), 0u);
  EXPECT_EQ(StatFor(*guest.kernel, kbuild::Sys::kGetppid).count, 0u);
}

}  // namespace
}  // namespace lupine::guestos

// Kernel panic semantics: the oops dump, CONFIG_PANIC_TIMEOUT's
// halt-vs-reboot posture, and the boot-time fault injection sites.
#include <gtest/gtest.h>

#include "src/apps/builtin.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/util/fault.h"
#include "src/vmm/vm.h"

namespace lupine::vmm {
namespace {

// hello-world on lupine-general with an explicit PANIC_TIMEOUT value.
VmSpec HelloSpec(const std::string& panic_timeout, FaultInjector* faults,
                 bool kml = false) {
  apps::RegisterBuiltinApps();
  kconfig::Config config = kconfig::LupineGeneral();
  if (kml) {
    EXPECT_TRUE(kconfig::ApplyKml(config).ok());
  }
  config.SetValue(kconfig::names::kPanicTimeout, panic_timeout);
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config);
  EXPECT_TRUE(image.ok());
  VmSpec spec;
  spec.monitor = Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildAppRootfsForApp("hello-world", /*kml_libc=*/kml);
  spec.memory = 512 * kMiB;
  spec.faults = faults;
  return spec;
}

TEST(PanicTest, AppFaultKillsInitAndPanicsWithHalt) {
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 2));
  Vm vm(HelloSpec("0", &faults));
  auto result = vm.BootAndRun();
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(vm.crashed());
  EXPECT_FALSE(vm.kernel().reboot_on_panic());
  // Without KML the wild access is a ring-3 segfault — but in pid 1, which
  // takes the kernel down just the same.
  EXPECT_TRUE(vm.kernel().console().Contains("segfault at 8"));
  EXPECT_TRUE(vm.kernel().console().Contains(
      "Kernel panic - not syncing: Attempted to kill init!"));
  // PANIC_TIMEOUT=0: the stock halt posture, no reboot line.
  EXPECT_TRUE(vm.kernel().console().Contains("---[ end Kernel panic"));
  EXPECT_FALSE(vm.kernel().console().Contains("Rebooting"));
}

TEST(PanicTest, KmlAppFaultIsARing0Oops) {
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 2));
  Vm vm(HelloSpec("0", &faults, /*kml=*/true));
  auto result = vm.BootAndRun();
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(vm.crashed());
  // Under KML the application *is* ring 0: its fault is a kernel BUG.
  EXPECT_TRUE(vm.kernel().console().Contains(
      "BUG: unable to handle kernel NULL pointer dereference"));
  EXPECT_EQ(vm.kernel().panic_reason(), "Fatal exception in ring 0");
}

TEST(PanicTest, NegativeTimeoutRebootsImmediately) {
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 2));
  Vm vm(HelloSpec("-1", &faults));
  (void)vm.BootAndRun();
  EXPECT_TRUE(vm.crashed());
  EXPECT_TRUE(vm.kernel().reboot_on_panic());
  EXPECT_TRUE(vm.kernel().console().Contains("Rebooting immediately.."));
}

TEST(PanicTest, PositiveTimeoutWaitsInVirtualTimeThenReboots) {
  FaultInjector halt_faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 2));
  Vm halted(HelloSpec("0", &halt_faults));
  (void)halted.BootAndRun();

  FaultInjector wait_faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 2));
  Vm waiting(HelloSpec("5", &wait_faults));
  (void)waiting.BootAndRun();

  EXPECT_TRUE(waiting.kernel().reboot_on_panic());
  EXPECT_TRUE(waiting.kernel().console().Contains("Rebooting in 5 seconds.."));
  // The panic loop burned exactly the configured 5 virtual seconds more than
  // the otherwise-identical halting guest.
  EXPECT_EQ(waiting.kernel().clock().now() - halted.kernel().clock().now(), Seconds(5));
}

TEST(PanicTest, PanicIsRecordedInTheTraceLog) {
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 2));
  Vm vm(HelloSpec("-1", &faults));
  (void)vm.BootAndRun();
  const auto& panics = vm.kernel().trace().panics();
  ASSERT_EQ(panics.size(), 1u);
  EXPECT_GT(panics[0].at, 0);
  EXPECT_EQ(panics[0].reason, "Attempted to kill init! exitcode=0x0000000b");
}

TEST(PanicTest, RunToCompletionReportsThePanicAsFault) {
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 2));
  Vm vm(HelloSpec("-1", &faults));
  auto result = vm.BootAndRun();
  EXPECT_EQ(result.status.err(), Err::kFault);
  EXPECT_NE(result.status.message().find("kernel panic:"), std::string::npos);
}

TEST(BootFaultTest, DecompressionFailureAbortsBoot) {
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kBootDecompress, 1));
  Vm vm(HelloSpec("0", &faults));
  Status s = vm.Boot();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(vm.kernel().console().Contains("crc error"));
  EXPECT_TRUE(vm.kernel().console().Contains("-- System halted"));
}

TEST(BootFaultTest, InitcallFailureAbortsBoot) {
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kBootInitcall, 1));
  Vm vm(HelloSpec("0", &faults));
  Status s = vm.Boot();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(vm.kernel().console().Contains("initcall lupine_subsys_init"));
}

TEST(BootFaultTest, CorruptedRootfsFailsTheMount) {
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kRootfsCorrupt, 1));
  Vm vm(HelloSpec("0", &faults));
  Status s = vm.Boot();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(vm.kernel().console().Contains("VFS: Cannot open root device"));
  // The same spec without the fault boots fine (the blob itself is intact).
  Vm clean(HelloSpec("0", nullptr));
  EXPECT_TRUE(clean.Boot().ok());
}

TEST(BootFaultTest, FaultFreeRunMatchesNullInjectorExactly) {
  // An armed injector whose rules never fire must not perturb the virtual
  // clock or console relative to the null injector (zero-cost guarantee).
  FaultInjector dormant(FaultPlan{}.FireOnce(FaultSite::kAppFault, 1000000));
  Vm with(HelloSpec("0", &dormant));
  Vm without(HelloSpec("0", nullptr));
  auto a = with.BootAndRun();
  auto b = without.BootAndRun();
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.console, b.console);
  EXPECT_EQ(with.kernel().clock().now(), without.kernel().clock().now());
}

}  // namespace
}  // namespace lupine::vmm

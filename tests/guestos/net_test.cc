#include "src/guestos/net.h"

#include <gtest/gtest.h>

#include "src/guestos/cost_model.h"
#include "src/kbuild/features.h"

namespace lupine::guestos {
namespace {

struct NetFixture {
  NetFixture() : sched(&clock, &DefaultCostModel(), &features), net(&sched) {}
  VirtualClock clock;
  kbuild::KernelFeatures features;
  Scheduler sched;
  NetStack net;
};

TEST(NetTest, ListenAcceptConnect) {
  NetFixture f;
  auto listener = f.net.Create(SockDomain::kInet, SockType::kStream);
  ASSERT_TRUE(f.net.Bind(listener, 80, "").ok());
  ASSERT_TRUE(f.net.Listen(listener, 16).ok());

  std::string received;
  f.sched.Spawn(nullptr, [&] {
    auto conn = f.net.Accept(listener);
    ASSERT_TRUE(conn.ok());
    auto data = f.net.Recv(conn.value(), 100);
    ASSERT_TRUE(data.ok());
    received = data.value();
  });
  f.sched.Spawn(nullptr, [&] {
    auto client = f.net.Create(SockDomain::kInet, SockType::kStream);
    ASSERT_TRUE(f.net.Connect(client, 80, "").ok());
    ASSERT_TRUE(f.net.Send(client, "hello").ok());
  });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_EQ(received, "hello");
}

TEST(NetTest, ConnectWithoutListenerRefused) {
  NetFixture f;
  f.sched.Spawn(nullptr, [&] {
    auto client = f.net.Create(SockDomain::kInet, SockType::kStream);
    Status s = f.net.Connect(client, 9999, "");
    EXPECT_EQ(s.err(), Err::kConnRefused);
  });
  f.sched.Run();
}

TEST(NetTest, DuplicateBindRejected) {
  NetFixture f;
  auto a = f.net.Create(SockDomain::kInet, SockType::kStream);
  auto b = f.net.Create(SockDomain::kInet, SockType::kStream);
  ASSERT_TRUE(f.net.Bind(a, 80, "").ok());
  EXPECT_EQ(f.net.Bind(b, 80, "").err(), Err::kAddrInUse);
}

TEST(NetTest, BacklogOverflowDropsConnections) {
  NetFixture f;
  auto listener = f.net.Create(SockDomain::kInet, SockType::kStream);
  ASSERT_TRUE(f.net.Bind(listener, 80, "").ok());
  ASSERT_TRUE(f.net.Listen(listener, 2).ok());
  f.sched.Spawn(nullptr, [&] {
    int refused = 0;
    for (int i = 0; i < 4; ++i) {
      auto client = f.net.Create(SockDomain::kInet, SockType::kStream);
      if (f.net.Connect(client, 80, "").err() == Err::kConnRefused) {
        ++refused;
      }
    }
    EXPECT_EQ(refused, 2);  // Backlog of 2, nobody accepting.
  });
  f.sched.Run();
}

TEST(NetTest, UnixSocketsByPath) {
  NetFixture f;
  auto listener = f.net.Create(SockDomain::kUnix, SockType::kStream);
  ASSERT_TRUE(f.net.Bind(listener, 0, "/run/app.sock").ok());
  ASSERT_TRUE(f.net.Listen(listener, 4).ok());
  bool connected = false;
  f.sched.Spawn(nullptr, [&] { (void)f.net.Accept(listener); });
  f.sched.Spawn(nullptr, [&] {
    auto client = f.net.Create(SockDomain::kUnix, SockType::kStream);
    connected = f.net.Connect(client, 0, "/run/app.sock").ok();
  });
  f.sched.Run();
  EXPECT_TRUE(connected);
}

TEST(NetTest, PeerCloseGivesEof) {
  NetFixture f;
  auto [a, b] = f.net.CreatePair(SockType::kStream);
  std::string got = "sentinel";
  f.sched.Spawn(nullptr, [&] {
    auto data = f.net.Recv(b, 10);
    ASSERT_TRUE(data.ok());
    got = data.value();
  });
  f.sched.Spawn(nullptr, [&, a = a] { f.net.Close(a); });
  EXPECT_EQ(f.sched.Run(), 0u);
  EXPECT_EQ(got, "");  // Orderly EOF.
}

TEST(NetTest, DgramPreservesMessageBoundaries) {
  NetFixture f;
  auto [a, b] = f.net.CreatePair(SockType::kDgram);
  std::vector<std::string> got;
  f.sched.Spawn(nullptr, [&, a = a] {
    (void)f.net.SendDgram(a, "one");
    (void)f.net.SendDgram(a, "two");
  });
  f.sched.Spawn(nullptr, [&, b = b] {
    got.push_back(f.net.RecvDgram(b).take());
    got.push_back(f.net.RecvDgram(b).take());
  });
  f.sched.Run();
  EXPECT_EQ(got, (std::vector<std::string>{"one", "two"}));
}

TEST(NetTest, StreamRecvRespectsMaxBytes) {
  NetFixture f;
  auto [a, b] = f.net.CreatePair(SockType::kStream);
  std::string first;
  std::string second;
  f.sched.Spawn(nullptr, [&, a = a, b = b] {
    (void)f.net.Send(a, "abcdef");
    first = f.net.Recv(b, 3).take();
    second = f.net.Recv(b, 3).take();
  });
  f.sched.Run();
  EXPECT_EQ(first, "abc");
  EXPECT_EQ(second, "def");
}

TEST(NetTest, SendToClosedPeerIsEpipe) {
  NetFixture f;
  auto [a, b] = f.net.CreatePair(SockType::kStream);
  f.sched.Spawn(nullptr, [&, a = a, b = b] {
    f.net.Close(b);
    Status s = f.net.Send(a, "x");
    EXPECT_FALSE(s.ok());
  });
  f.sched.Run();
}

}  // namespace
}  // namespace lupine::guestos

// Signal delivery: handlers run at syscall boundaries; the default
// disposition terminates.
#include <gtest/gtest.h>

#include "src/workload/spawn.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::guestos {
namespace {

using testing::GuestFixture;

constexpr int kSigUsr1 = 10;
constexpr int kSigTerm = 15;

TEST(SignalTest, HandlerRunsAtNextSyscallBoundary) {
  GuestFixture guest;
  int delivered = 0;
  guest.RunInGuest([&](SyscallApi& sys) {
    (void)sys.SigactionHandler(kSigUsr1, [&](int signum) { delivered = signum; });
    int self = sys.Getpid().take();
    EXPECT_EQ(delivered, 0);
    // kill(2) is itself a syscall: a self-signal is delivered on its own
    // return path, exactly like a real kernel's return-to-user check.
    (void)sys.Kill(self, kSigUsr1);
    EXPECT_EQ(delivered, kSigUsr1);
  });
}

TEST(SignalTest, DefaultDispositionTerminates) {
  GuestFixture guest;
  int parent_saw = -1;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto pid = sys.Fork([](SyscallApi& child) -> int {
      for (int i = 0; i < 1000; ++i) {
        (void)child.Getppid();  // Victim loop: plenty of delivery points.
        child.SchedYield();
      }
      return 0;  // Should never get here.
    });
    ASSERT_TRUE(pid.ok());
    sys.SchedYield();  // Let the child run a little.
    ASSERT_TRUE(sys.Kill(pid.value(), kSigTerm).ok());
    auto code = sys.Wait4(pid.value());
    ASSERT_TRUE(code.ok());
    parent_saw = code.value();
  });
  EXPECT_EQ(parent_saw, 128 + kSigTerm);
  EXPECT_TRUE(guest.kernel->console().Contains("terminated by signal 15"));
}

TEST(SignalTest, HandlerPreventsTermination) {
  GuestFixture guest;
  bool child_finished = false;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto pid = sys.Fork([&](SyscallApi& child) -> int {
      bool stop = false;
      (void)child.SigactionHandler(kSigTerm, [&stop](int) { stop = true; });
      while (!stop) {
        child.SchedYield();
      }
      child_finished = true;
      return 7;  // Graceful shutdown.
    });
    ASSERT_TRUE(pid.ok());
    sys.SchedYield();
    (void)sys.Kill(pid.value(), kSigTerm);
    auto code = sys.Wait4(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 7);
  });
  EXPECT_TRUE(child_finished);
}

TEST(SignalTest, ResetToDefaultWithNullHandler) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    int self = sys.Getpid().take();
    (void)sys.SigactionHandler(kSigUsr1, [](int) {});
    (void)sys.SigactionHandler(kSigUsr1, nullptr);  // Back to default (fatal).
    (void)sys.Kill(self, kSigUsr1);
    (void)sys.Getppid();  // Delivery point: terminates this process.
    ADD_FAILURE() << "should have been terminated";
  });
  EXPECT_TRUE(guest.kernel->console().Contains("terminated by signal 10"));
}

TEST(SignalTest, KillMissingProcessIsEsrchLike) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    EXPECT_EQ(sys.Kill(4242, kSigTerm).err(), Err::kNoEnt);
  });
}

TEST(SignalTest, SignalsQueueInOrder) {
  GuestFixture guest;
  std::vector<int> order;
  guest.RunInGuest([&](SyscallApi& sys) {
    (void)sys.SigactionHandler(1, [&](int s) { order.push_back(s); });
    (void)sys.SigactionHandler(2, [&](int s) { order.push_back(s); });
    int self = sys.Getpid().take();
    (void)sys.Kill(self, 1);
    (void)sys.Kill(self, 2);
    (void)sys.Getppid();
    (void)sys.Getppid();
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SignalTest, ColdFileReadCostsMoreThanWarm) {
  // Cold page-cache reads pay the virtio-blk path (extension realism).
  GuestFixture guest;
  Nanos cold = 0;
  Nanos warm = 0;
  guest.RunInGuest([&](SyscallApi& sys) {
    auto fd = sys.Open("/bin/sh");
    ASSERT_TRUE(fd.ok());
    Nanos t0 = guest.kernel->clock().now();
    (void)sys.Read(fd.value(), 4096);
    cold = guest.kernel->clock().now() - t0;
    (void)sys.Close(fd.value());

    auto fd2 = sys.Open("/bin/sh");
    Nanos t1 = guest.kernel->clock().now();
    (void)sys.Read(fd2.value(), 4096);
    warm = guest.kernel->clock().now() - t1;
    (void)sys.Close(fd2.value());
  });
  EXPECT_GT(cold, warm);
}

}  // namespace
}  // namespace lupine::guestos

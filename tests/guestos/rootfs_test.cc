#include "src/guestos/rootfs.h"

#include <gtest/gtest.h>

namespace lupine::guestos {
namespace {

FsSpec SampleSpec() {
  FsSpec spec;
  FsEntry dir_entry;
  dir_entry.type = InodeType::kDir;
  spec["/bin"] = dir_entry;
  FsEntry app_entry;
  app_entry.data = "#LUPINE_ELF v1\napp=x\n";
  app_entry.executable = true;
  spec["/bin/app"] = app_entry;
  FsEntry host_entry;
  host_entry.data = "lupine\n";
  spec["/etc/hostname"] = host_entry;
  FsEntry link_entry;
  link_entry.type = InodeType::kSymlink;
  link_entry.symlink_target = "/lib/libc-1.so";
  spec["/lib/libc.so"] = link_entry;
  FsEntry dev_entry;
  dev_entry.type = InodeType::kCharDev;
  dev_entry.dev = DevId::kNull;
  spec["/dev/null"] = dev_entry;
  return spec;
}

TEST(RootfsTest, FormatParseRoundTrip) {
  FsSpec spec = SampleSpec();
  std::string blob = FormatRootfs(spec);
  auto parsed = ParseRootfs(blob);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), spec.size());
  EXPECT_EQ(parsed.value().at("/etc/hostname").data, "lupine\n");
  EXPECT_TRUE(parsed.value().at("/bin/app").executable);
  EXPECT_EQ(parsed.value().at("/lib/libc.so").symlink_target, "/lib/libc-1.so");
  EXPECT_EQ(parsed.value().at("/dev/null").dev, DevId::kNull);
}

TEST(RootfsTest, BadMagicRejected) {
  auto parsed = ParseRootfs("EXT2FSIMAGE....");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.err(), Err::kInval);
}

TEST(RootfsTest, TruncatedBlobRejected) {
  std::string blob = FormatRootfs(SampleSpec());
  auto parsed = ParseRootfs(blob.substr(0, blob.size() / 2));
  EXPECT_FALSE(parsed.ok());
}

TEST(RootfsTest, EmptyImageRoundTrips) {
  auto parsed = ParseRootfs(FormatRootfs({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(RootfsTest, MountMaterializesTree) {
  Vfs vfs;
  ASSERT_TRUE(MountRootfs(SampleSpec(), vfs).ok());
  EXPECT_TRUE(vfs.Exists("/bin/app"));
  EXPECT_TRUE(vfs.Exists("/etc/hostname"));
  auto app = vfs.Resolve("/bin/app");
  ASSERT_TRUE(app.ok());
  EXPECT_TRUE(app.value()->executable);
  auto dev = vfs.Resolve("/dev/null");
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ(dev.value()->type, InodeType::kCharDev);
}

TEST(RootfsTest, ImpliedParentDirectoriesCreated) {
  FsSpec spec;
  FsEntry nested;
  nested.data = "x";
  spec["/deeply/nested/file"] = nested;
  Vfs vfs;
  ASSERT_TRUE(MountRootfs(spec, vfs).ok());
  EXPECT_TRUE(vfs.Exists("/deeply/nested"));
}

TEST(RootfsTest, BinaryContentSurvives) {
  FsSpec spec;
  std::string binary;
  for (int i = 0; i < 256; ++i) {
    binary.push_back(static_cast<char>(i));
  }
  FsEntry blob;
  blob.data = binary;
  spec["/bin/blob"] = blob;
  auto parsed = ParseRootfs(FormatRootfs(spec));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().at("/bin/blob").data, binary);
}

}  // namespace
}  // namespace lupine::guestos

// Per-process /proc entries (extension: procfs realism).
#include <gtest/gtest.h>

#include "tests/guestos/guest_fixture.h"

namespace lupine::guestos {
namespace {

using testing::GuestFixture;

TEST(ProcfsPidTest, EntriesAppearAfterMountAndFork) {
  GuestFixture guest;
  int child_pid = 0;
  guest.RunInGuest([&](SyscallApi& sys) {
    ASSERT_TRUE(sys.Mount("proc", "/proc").ok());
    int self = sys.Getpid().take();
    EXPECT_TRUE(guest.kernel->vfs().Exists("/proc/" + std::to_string(self) + "/status"));
    auto pid = sys.Fork([](SyscallApi& child) -> int {
      child.Nanosleep(Millis(1));
      return 0;
    });
    ASSERT_TRUE(pid.ok());
    child_pid = pid.value();
    // The forked child is published immediately.
    EXPECT_TRUE(
        guest.kernel->vfs().Exists("/proc/" + std::to_string(child_pid) + "/status"));
    (void)sys.Wait4(child_pid);
  });
  EXPECT_GT(child_pid, 0);
}

TEST(ProcfsPidTest, StatusReflectsExecName) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    ASSERT_TRUE(sys.Mount("proc", "/proc").ok());
    auto pid = sys.Fork([](SyscallApi& child) -> int {
      (void)child.Execve("/bin/hello", {"/bin/hello"});
      return 127;
    });
    ASSERT_TRUE(pid.ok());
    (void)sys.Wait4(pid.value());
    auto status = guest.kernel->vfs().Resolve("/proc/" + std::to_string(pid.value()) +
                                              "/status");
    ASSERT_TRUE(status.ok());
    EXPECT_NE(status.value()->data.find("Name:\thello-world"), std::string::npos);
  });
}

TEST(ProcfsPidTest, NoEntriesWithoutProcMount) {
  GuestFixture guest;
  guest.RunInGuest([&](SyscallApi& sys) {
    int self = sys.Getpid().take();
    EXPECT_FALSE(guest.kernel->vfs().Exists("/proc/" + std::to_string(self)));
  });
}

TEST(ProcfsPidTest, ReadableThroughTheSyscallLayer) {
  GuestFixture guest;
  std::string contents;
  guest.RunInGuest([&](SyscallApi& sys) {
    ASSERT_TRUE(sys.Mount("proc", "/proc").ok());
    int self = sys.Getpid().take();
    auto fd = sys.Open("/proc/" + std::to_string(self) + "/status");
    ASSERT_TRUE(fd.ok());
    contents = sys.Read(fd.value(), 4096).take();
    (void)sys.Close(fd.value());
  });
  EXPECT_NE(contents.find("State:\tR (running)"), std::string::npos);
}

}  // namespace
}  // namespace lupine::guestos

#include "src/guestos/kernel.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::guestos {
namespace {

using testing::GuestFixture;

TEST(KernelTest, BootsAndMountsRootfs) {
  GuestFixture guest;
  EXPECT_TRUE(guest.kernel->vfs().Exists("/sbin/init"));
  EXPECT_TRUE(guest.kernel->vfs().Exists("/dev/null"));
  EXPECT_TRUE(guest.kernel->vfs().Exists("/dev/zero"));
  EXPECT_GT(guest.kernel->boot_trace().Total(), 0);
}

TEST(KernelTest, BootChargesKernelMemory) {
  GuestFixture guest;
  EXPECT_GT(guest.kernel->mm().used(), 5 * kMiB);
  EXPECT_FALSE(guest.kernel->oom());
}

TEST(KernelTest, BootPhasesIncludeInitcalls) {
  GuestFixture guest;
  bool has_initcalls = false;
  bool has_decompress = false;
  for (const auto& phase : guest.kernel->boot_trace().phases) {
    has_initcalls |= phase.name == "initcalls";
    has_decompress |= phase.name == "decompress";
  }
  EXPECT_TRUE(has_initcalls);
  EXPECT_TRUE(has_decompress);
}

TEST(KernelTest, ParavirtSpeedsBoot) {
  kconfig::Config with_pv = kconfig::LupineGeneral();
  kconfig::Config without_pv = kconfig::LupineGeneral();
  without_pv.Disable(kconfig::names::kParavirt);

  GuestFixture a(with_pv);
  GuestFixture b(without_pv);
  // Section 4.3: without CONFIG_PARAVIRT boot jumps from ~23ms to ~71ms.
  EXPECT_GT(b.kernel->boot_trace().Total(),
            a.kernel->boot_trace().Total() + Millis(40));
}

TEST(KernelTest, StartInitRunsTheStartupScript) {
  GuestFixture guest;
  auto init = guest.kernel->StartInit("/sbin/init");
  ASSERT_TRUE(init.ok()) << init.status().ToString();
  guest.kernel->Run();
  // The bench rootfs init execs hello-world.
  EXPECT_TRUE(guest.kernel->console().Contains("Hello from Docker!"));
  EXPECT_TRUE(init.value()->exited);
  EXPECT_EQ(init.value()->exit_code, 0);
}

TEST(KernelTest, MissingInitPanics) {
  GuestFixture guest;
  (void)guest.kernel->vfs().Unlink("/sbin/init");
  auto init = guest.kernel->StartInit("/sbin/init");
  ASSERT_TRUE(init.ok());
  guest.kernel->Run();
  EXPECT_TRUE(guest.kernel->console().Contains("Kernel panic"));
}

TEST(KernelTest, ProcessLifecycle) {
  GuestFixture guest;
  auto aspace = std::make_shared<AddressSpace>(&guest.kernel->mm());
  Process* p = guest.kernel->CreateProcess(0, aspace, "proc");
  EXPECT_EQ(guest.kernel->FindProcess(p->pid()), p);
  guest.kernel->ExitProcess(p, 3);
  EXPECT_TRUE(p->exited);
  EXPECT_EQ(p->exit_code, 3);
}

TEST(KernelTest, PageCacheChargedOnce) {
  GuestFixture guest;
  auto inode = guest.kernel->vfs().Resolve("/etc/hostname");
  ASSERT_TRUE(inode.ok());
  Bytes before = guest.kernel->mm().used();
  ASSERT_TRUE(guest.kernel->ChargePageCache(*inode.value(), 10 * kPageSize).ok());
  EXPECT_EQ(guest.kernel->mm().used(), before + 10 * kPageSize);
  ASSERT_TRUE(guest.kernel->ChargePageCache(*inode.value(), 10 * kPageSize).ok());
  EXPECT_EQ(guest.kernel->mm().used(), before + 10 * kPageSize);  // No double charge.
}

TEST(KernelTest, TinyKernelBootsTooButNoFasterThanNormal) {
  kconfig::Config normal = kconfig::LupineGeneral();
  kconfig::Config tiny = kconfig::LupineGeneral();
  kconfig::ApplyTiny(tiny);
  GuestFixture a(normal);
  GuestFixture b(tiny);
  // Section 4.3: -tiny does not improve boot time (same phase structure).
  double ratio = static_cast<double>(b.kernel->boot_trace().Total()) /
                 static_cast<double>(a.kernel->boot_trace().Total());
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.15);
}

TEST(KernelTest, OomDuringBootReported) {
  kbuild::ImageBuilder builder;
  auto image = builder.Build(kconfig::LupineGeneral());
  ASSERT_TRUE(image.ok());
  Kernel kernel(image.value(), 2 * kMiB);  // Far too small.
  Status s = kernel.Boot(apps::BuildBenchRootfs(false));
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(kernel.oom());
}

}  // namespace
}  // namespace lupine::guestos

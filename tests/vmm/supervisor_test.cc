// Supervisor: restart-with-backoff, crash-loop quarantine, deterministic
// incident timelines, and fleet integration through the KernelCache.
#include "src/vmm/supervisor.h"

#include <gtest/gtest.h>

#include "src/core/multik.h"
#include "src/util/fault.h"

namespace lupine::vmm {
namespace {

// Shares built artifacts across tests (builds are deterministic; the cache
// just saves time).
core::KernelCache& Cache() {
  static core::KernelCache cache;
  return cache;
}

Supervisor::VmFactory Factory(const std::string& app, FaultInjector* faults,
                              Bytes memory = 256 * kMiB) {
  auto artifact = Cache().GetOrBuild(app);
  EXPECT_TRUE(artifact.ok()) << artifact.status().ToString();
  core::KernelCache::ArtifactPtr ptr = *artifact;
  return [ptr, faults, memory] { return ptr->Launch(memory, faults); };
}

TEST(SupervisorTest, BatchMemberRunsToCompleted) {
  Supervisor supervisor;
  supervisor.AddMember("hello", Factory("hello-world", nullptr));
  EXPECT_EQ(supervisor.Run(), 0u);
  EXPECT_EQ(supervisor.state("hello"), MemberState::kCompleted);
  const auto& stats = supervisor.stats("hello");
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_GT(stats.first_healthy_at, 0);
}

TEST(SupervisorTest, ServerMemberStaysHealthyWithLiveVm) {
  Supervisor supervisor;
  supervisor.AddMember("redis", Factory("redis", nullptr), "Ready to accept connections");
  EXPECT_EQ(supervisor.Run(), 0u);
  EXPECT_EQ(supervisor.state("redis"), MemberState::kHealthy);
  ASSERT_NE(supervisor.stats("redis").vm, nullptr);
  EXPECT_TRUE(supervisor.stats("redis").vm->kernel().console().Contains(
      "Ready to accept connections"));
}

TEST(SupervisorTest, CrashedServerIsRestartedAndRecovers) {
  // One wild access on the 10th syscall of boot #1; the injector outlives
  // the restart, so boot #2 runs clean.
  FaultInjector faults(FaultPlan{}.FireOnce(FaultSite::kAppFault, 10));
  Supervisor supervisor;
  supervisor.AddMember("redis", Factory("redis", &faults), "Ready to accept connections");
  EXPECT_EQ(supervisor.Run(), 0u);
  EXPECT_EQ(supervisor.state("redis"), MemberState::kHealthy);
  EXPECT_EQ(supervisor.stats("redis").attempts, 2);
  EXPECT_EQ(supervisor.stats("redis").failures, 1);

  int panics = 0, restarts = 0;
  for (const Incident& incident : supervisor.timeline()) {
    panics += incident.kind == "panic" ? 1 : 0;
    restarts += incident.kind == "restart-scheduled" ? 1 : 0;
  }
  EXPECT_EQ(panics, 1);
  EXPECT_EQ(restarts, 1);
}

TEST(SupervisorTest, CrashLoopingMemberIsQuarantinedAsDegraded) {
  FaultInjector faults(FaultPlan{}.FireAlways(FaultSite::kBootInitcall));
  SupervisorPolicy policy;
  policy.crash_loop_failures = 3;
  Supervisor supervisor(policy);
  supervisor.AddMember("hello", Factory("hello-world", &faults));
  EXPECT_EQ(supervisor.Run(), 1u);  // The degraded member stays unsettled.
  EXPECT_EQ(supervisor.state("hello"), MemberState::kDegraded);
  EXPECT_EQ(supervisor.stats("hello").attempts, 3);
  EXPECT_EQ(supervisor.timeline().back().kind, "degraded");
}

TEST(SupervisorTest, DegradedMemberDoesNotTakeDownTheFleet) {
  FaultInjector faults(FaultPlan{}.FireAlways(FaultSite::kBootInitcall));
  SupervisorPolicy policy;
  policy.crash_loop_failures = 2;
  Supervisor supervisor(policy);
  supervisor.AddMember("bad", Factory("hello-world", &faults));
  supervisor.AddMember("good", Factory("hello-world", nullptr));
  EXPECT_EQ(supervisor.Run(), 1u);
  EXPECT_EQ(supervisor.state("bad"), MemberState::kDegraded);
  EXPECT_EQ(supervisor.state("good"), MemberState::kCompleted);
}

TEST(SupervisorTest, BackoffScheduleFollowsThePolicyExactly) {
  FaultInjector faults(FaultPlan{}.FireAlways(FaultSite::kBootInitcall));
  SupervisorPolicy policy;
  policy.backoff_initial = Millis(100);
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap = Millis(400);
  policy.backoff_jitter = 0;  // Exact doubling, no randomness.
  policy.crash_loop_failures = 6;
  Supervisor supervisor(policy);
  supervisor.AddMember("hello", Factory("hello-world", &faults));
  EXPECT_EQ(supervisor.Run(), 1u);

  // Failure n schedules restart n at failure_time + min(cap, 100ms * 2^(n-1)).
  std::vector<Nanos> failures, boots;
  for (const Incident& incident : supervisor.timeline()) {
    if (incident.kind == "boot-failed") {
      failures.push_back(incident.at);
    } else if (incident.kind == "boot") {
      boots.push_back(incident.at);
    }
  }
  ASSERT_EQ(boots.size(), 6u);
  ASSERT_EQ(failures.size(), 6u);
  const std::vector<Nanos> expected = {Millis(100), Millis(200), Millis(400), Millis(400),
                                       Millis(400)};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(boots[i + 1] - failures[i], expected[i]) << "restart " << i;
  }
}

TEST(SupervisorTest, PolicyCountersWatchGiveupsAndCappedBackoffs) {
  FaultInjector faults(FaultPlan{}.FireAlways(FaultSite::kBootInitcall));
  SupervisorPolicy policy;
  policy.backoff_initial = Millis(100);
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap = Millis(200);  // Saturates on the 2nd restart.
  policy.backoff_jitter = 0;
  policy.crash_loop_failures = 5;
  telemetry::MetricRegistry registry;
  Supervisor supervisor(policy);
  supervisor.set_metrics(&registry);
  supervisor.AddMember("hello", Factory("hello-world", &faults));
  EXPECT_EQ(supervisor.Run(), 1u);

  // 5 failures => 4 scheduled restarts (the 5th failure degrades instead);
  // backoffs 100, 200(capped), 200(capped), 200(capped) — 3 hit the cap.
  EXPECT_EQ(registry.GetCounter("supervisor.giveup_total").value(), 1u);
  EXPECT_EQ(registry.GetCounter("supervisor.backoff_capped_total").value(), 3u);
}

TEST(SupervisorTest, JitterDecorrelatesButStaysWithinBounds) {
  auto restart_gaps = [](uint64_t seed) {
    FaultInjector faults(FaultPlan{}.FireAlways(FaultSite::kBootInitcall));
    SupervisorPolicy policy;
    policy.backoff_jitter = 0.1;
    policy.crash_loop_failures = 4;
    policy.seed = seed;
    Supervisor supervisor(policy);
    supervisor.AddMember("hello", Factory("hello-world", &faults));
    EXPECT_EQ(supervisor.Run(), 1u);
    std::vector<Nanos> gaps;
    Nanos failed_at = -1;
    for (const Incident& incident : supervisor.timeline()) {
      if (incident.kind == "boot-failed") {
        failed_at = incident.at;
      } else if (incident.kind == "boot" && failed_at >= 0) {
        gaps.push_back(incident.at - failed_at);
      }
    }
    return gaps;
  };
  auto gaps = restart_gaps(1);
  ASSERT_EQ(gaps.size(), 3u);
  for (size_t i = 0; i < gaps.size(); ++i) {
    const double base = static_cast<double>(Millis(100)) * (1 << i);
    EXPECT_GE(gaps[i], static_cast<Nanos>(base * 0.9));
    EXPECT_LE(gaps[i], static_cast<Nanos>(base * 1.1));
  }
  // Same seed replays the gaps; a different seed draws different jitter.
  EXPECT_EQ(gaps, restart_gaps(1));
  EXPECT_NE(gaps, restart_gaps(99));
}

TEST(SupervisorTest, SameSeedProducesByteIdenticalTimeline) {
  auto timeline = [] {
    FaultInjector crash_once(FaultPlan{}.FireOnce(FaultSite::kAppFault, 10));
    FaultInjector crash_loop(FaultPlan{}.FireAlways(FaultSite::kBootInitcall));
    SupervisorPolicy policy;
    policy.crash_loop_failures = 3;
    Supervisor supervisor(policy);
    supervisor.AddMember("flaky", Factory("redis", &crash_once),
                         "Ready to accept connections");
    supervisor.AddMember("looper", Factory("hello-world", &crash_loop));
    supervisor.AddMember("steady", Factory("hello-world", nullptr));
    (void)supervisor.Run();
    return supervisor.TimelineText();
  };
  const std::string first = timeline();
  EXPECT_EQ(first, timeline());
  EXPECT_NE(first.find("panic"), std::string::npos);
  EXPECT_NE(first.find("degraded"), std::string::npos);
}

TEST(SupervisorTest, HaltedPanicIsOnlyDetectedAtTheNextHealthProbe) {
  // The KernelCache default bakes PANIC_TIMEOUT=-1 (reboot, immediate
  // detection). A halting build (PANIC_TIMEOUT=0) waits for the probe grid.
  auto detection = [](int panic_timeout) {
    core::BuildOptions options;
    options.panic_timeout = panic_timeout;
    core::KernelCache cache(options);
    auto artifact = cache.GetOrBuild("hello-world");
    EXPECT_TRUE(artifact.ok());
    core::KernelCache::ArtifactPtr ptr = *artifact;
    FaultInjector injector(FaultPlan{}.FireOnce(FaultSite::kAppFault, 2));
    Supervisor supervisor;
    supervisor.AddMember("hello",
                         [ptr, &injector] { return ptr->Launch(256 * kMiB, &injector); });
    (void)supervisor.Run();
    Nanos panic_at = -1, detected_at = -1;
    for (const Incident& incident : supervisor.timeline()) {
      if (incident.kind == "panic" && panic_at < 0) {
        panic_at = incident.at;
      }
      if (incident.kind == "crash" && detected_at < 0) {
        detected_at = incident.at;
      }
    }
    EXPECT_GE(panic_at, 0);
    EXPECT_GE(detected_at, panic_at);
    return detected_at - panic_at;
  };
  EXPECT_EQ(detection(-1), 0) << "rebooting guest notifies the monitor at once";
  const Nanos halted = detection(0);
  EXPECT_GT(halted, 0) << "halted guest sits dead until the next probe";
  EXPECT_LE(halted, Millis(50));  // Default health_check_interval.
}

TEST(MinMemoryProbeFaultTest, InjectedEnomemDefeatsEveryMemorySize) {
  auto artifact = Cache().GetOrBuild("hello-world");
  ASSERT_TRUE(artifact.ok());
  core::KernelCache::ArtifactPtr ptr = *artifact;

  auto try_run = [ptr](Bytes memory, FaultInjector* faults) {
    auto vm = ptr->Launch(memory, faults);
    auto result = vm->BootAndRun();
    return result.status.ok() && result.exit_code == 0;
  };

  const Bytes baseline =
      MinMemoryProbe(kMiB, 256 * kMiB, [&](Bytes m) { return try_run(m, nullptr); });
  EXPECT_GT(baseline, 0u);

  // ENOMEM injected on every allocation: no amount of RAM can help, the
  // probe must report that nothing worked rather than a bogus threshold.
  FaultInjector faults(FaultPlan{}.FireAlways(FaultSite::kMemAlloc));
  EXPECT_EQ(MinMemoryProbe(kMiB, 256 * kMiB, [&](Bytes m) { return try_run(m, &faults); }),
            0u);

  // And a null injector reproduces the baseline exactly (determinism).
  EXPECT_EQ(MinMemoryProbe(kMiB, 256 * kMiB, [&](Bytes m) { return try_run(m, nullptr); }),
            baseline);
}

}  // namespace
}  // namespace lupine::vmm

// Boot-phase composition across configs and monitors.
#include <gtest/gtest.h>

#include "src/apps/builtin.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/vmm/vm.h"

namespace lupine::vmm {
namespace {

namespace n = kconfig::names;

std::unique_ptr<Vm> BootVm(kconfig::Config config, const MonitorProfile& monitor) {
  apps::RegisterBuiltinApps();
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  VmSpec spec;
  spec.monitor = monitor;
  spec.image = image.take();
  spec.rootfs = apps::BuildAppRootfsForApp("hello-world", false);
  auto vm = std::make_unique<Vm>(std::move(spec));
  EXPECT_TRUE(vm->Boot().ok());
  return vm;
}

bool HasPhase(const Vm& vm, const std::string& name) {
  for (const auto& phase : vm.boot_report().phases) {
    if (phase.name == name) {
      return true;
    }
  }
  return false;
}

TEST(BootPhasesTest, SmpBringupOnlyWithSmpConfig) {
  auto without = BootVm(kconfig::LupineGeneral(), Firecracker());
  EXPECT_FALSE(HasPhase(*without, "smp-bringup"));
  auto with = BootVm(kconfig::MicrovmConfig(), Firecracker());
  EXPECT_TRUE(HasPhase(*with, "smp-bringup"));
}

TEST(BootPhasesTest, PciEnumerationOnlyWithPciConfig) {
  auto without = BootVm(kconfig::LupineGeneral(), Qemu());
  EXPECT_FALSE(HasPhase(*without, "pci-enumeration"));

  kconfig::Config with_pci = kconfig::LupineGeneral();
  kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
  ASSERT_TRUE(resolver.Enable(with_pci, n::kPci).ok());
  auto with = BootVm(with_pci, Qemu());
  EXPECT_TRUE(HasPhase(*with, "pci-enumeration"));
  EXPECT_GT(with->boot_report().total, without->boot_report().total);
}

TEST(BootPhasesTest, MonitorPhaseNamedAfterMonitor) {
  auto fc = BootVm(kconfig::LupineGeneral(), Firecracker());
  EXPECT_EQ(fc->boot_report().phases.front().name, "monitor:firecracker");
  auto qemu = BootVm(kconfig::LupineGeneral(), Qemu());
  EXPECT_EQ(qemu->boot_report().phases.front().name, "monitor:qemu");
  EXPECT_GT(qemu->boot_report().phases.front().duration,
            fc->boot_report().phases.front().duration);
}

TEST(BootPhasesTest, InitcallsScaleWithConfigSize) {
  auto small = BootVm(kconfig::LupineBase(), Firecracker());
  auto large = BootVm(kconfig::MicrovmConfig(), Firecracker());
  Nanos small_initcalls = 0;
  Nanos large_initcalls = 0;
  for (const auto& phase : small->boot_report().phases) {
    if (phase.name == "initcalls") {
      small_initcalls = phase.duration;
    }
  }
  for (const auto& phase : large->boot_report().phases) {
    if (phase.name == "initcalls") {
      large_initcalls = phase.duration;
    }
  }
  // 833 options vs 283: microVM pays several times more initcall work.
  EXPECT_GT(large_initcalls, 3 * small_initcalls);
}

TEST(BootPhasesTest, DecompressScalesWithImageSize) {
  auto small = BootVm(kconfig::LupineBase(), Firecracker());
  auto large = BootVm(kconfig::MicrovmConfig(), Firecracker());
  auto phase_of = [](const Vm& vm) {
    for (const auto& phase : vm.boot_report().phases) {
      if (phase.name == "decompress") {
        return phase.duration;
      }
    }
    return Nanos{0};
  };
  EXPECT_GT(phase_of(*large), 2 * phase_of(*small));
}

}  // namespace
}  // namespace lupine::vmm

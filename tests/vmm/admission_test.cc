#include "src/vmm/admission.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/telemetry/metrics.h"

namespace lupine::vmm {
namespace {

using Verdict = FleetAdmissionController::Verdict;

void WaitForWaiters(const FleetAdmissionController& controller, size_t n) {
  while (controller.stats().waiting < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(FleetAdmissionTest, UnlimitedBudgetAdmitsEverythingInFull) {
  FleetAdmissionController controller;  // host_budget = 0.
  Grant a = controller.Admit({"a", 4 * kGiB, 0});
  Grant b = controller.Admit({"b", 16 * kGiB, 0});
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.granted(), 4 * kGiB);
  EXPECT_FALSE(a.degraded());
  EXPECT_FALSE(a.waited());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(controller.stats().committed, 20 * kGiB);
}

TEST(FleetAdmissionTest, RejectsRequestThatCanNeverFit) {
  FleetAdmissionController controller({256 * kMiB, 0});
  // 512 MiB with no floor cannot fit even on an idle host.
  Grant grant = controller.Admit({"big", 512 * kMiB, 0});
  EXPECT_FALSE(grant.valid());
  EXPECT_EQ(grant.granted(), 0u);
  // A floor above the whole budget is just as hopeless.
  Grant floored = controller.Admit({"big", 512 * kMiB, 300 * kMiB});
  EXPECT_FALSE(floored.valid());
  FleetAdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.committed, 0u);
}

TEST(FleetAdmissionTest, DegradesToFloorWhenFullDoesNotFit) {
  FleetAdmissionController controller({1280 * kMiB, 0});
  Grant a = controller.Admit({"a", 512 * kMiB, 0});
  Grant b = controller.Admit({"b", 512 * kMiB, 0});
  // 1024 committed; a third full 512 does not fit, its 128 floor does.
  Grant c = controller.Admit({"c", 512 * kMiB, 128 * kMiB});
  ASSERT_TRUE(c.valid());
  EXPECT_TRUE(c.degraded());
  EXPECT_FALSE(c.waited());
  EXPECT_EQ(c.granted(), 128 * kMiB);
  FleetAdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.committed, 1152 * kMiB);
  EXPECT_EQ(stats.peak_committed, 1152 * kMiB);
}

TEST(FleetAdmissionTest, GrantReleasesOnDestructionAndIsIdempotent) {
  FleetAdmissionController controller({1 * kGiB, 0});
  {
    Grant grant = controller.Admit({"a", 512 * kMiB, 0});
    EXPECT_EQ(controller.stats().committed, 512 * kMiB);
    grant.Release();
    EXPECT_EQ(controller.stats().committed, 0u);
    grant.Release();  // Idempotent.
    EXPECT_EQ(controller.stats().committed, 0u);
  }
  FleetAdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.committed, 0u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.peak_committed, 512 * kMiB);
}

TEST(FleetAdmissionTest, QueuesUntilBudgetDrainsOnVmExit) {
  FleetAdmissionController controller({512 * kMiB, 0});
  Grant running = controller.Admit({"running", 512 * kMiB, 0});
  ASSERT_TRUE(running.valid());

  // The second launch must block: budget exhausted, no floor.
  auto pending = std::async(std::launch::async,
                            [&] { return controller.Admit({"queued", 512 * kMiB, 0}); });
  WaitForWaiters(controller, 1);
  EXPECT_EQ(controller.stats().queued, 1u);

  running.Release();  // The "VM" exits; the queued launch drains.
  Grant drained = pending.get();
  ASSERT_TRUE(drained.valid());
  EXPECT_TRUE(drained.waited());
  EXPECT_FALSE(drained.degraded());
  EXPECT_EQ(drained.granted(), 512 * kMiB);
  EXPECT_EQ(controller.stats().waiting, 0u);
}

TEST(FleetAdmissionTest, QueueDrainsInFifoOrder) {
  FleetAdmissionController controller({512 * kMiB, 0});
  Grant running = controller.Admit({"running", 512 * kMiB, 0});

  std::mutex mu;
  std::vector<int> order;
  auto launch = [&](int id) {
    Grant grant = controller.Admit({"vm" + std::to_string(id), 512 * kMiB, 0});
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
    return grant;
  };
  // Enqueue 1 then 2, deterministically (wait for each to be parked).
  auto first = std::async(std::launch::async, launch, 1);
  WaitForWaiters(controller, 1);
  auto second = std::async(std::launch::async, launch, 2);
  WaitForWaiters(controller, 2);

  running.Release();
  Grant g1 = first.get();  // Head of the line gets the freed bytes.
  EXPECT_EQ(controller.stats().waiting, 1u);
  g1.Release();
  Grant g2 = second.get();
  g2.Release();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(FleetAdmissionTest, MaxWaitersRejectsOverflow) {
  FleetAdmissionController controller({512 * kMiB, 1});
  Grant running = controller.Admit({"running", 512 * kMiB, 0});
  auto pending = std::async(std::launch::async,
                            [&] { return controller.Admit({"queued", 512 * kMiB, 0}); });
  WaitForWaiters(controller, 1);
  // The queue is at max_waiters: the next launch fails fast.
  Grant overflow = controller.Admit({"overflow", 512 * kMiB, 0});
  EXPECT_FALSE(overflow.valid());
  EXPECT_EQ(controller.stats().rejected, 1u);
  running.Release();
  EXPECT_TRUE(pending.get().valid());
}

TEST(FleetAdmissionTest, ProbeReportsEveryVerdict) {
  FleetAdmissionController unlimited;
  EXPECT_EQ(unlimited.Probe({"a", 64 * kGiB, 0}), Verdict::kAdmit);

  FleetAdmissionController controller({1 * kGiB, 0});
  EXPECT_EQ(controller.Probe({"a", 512 * kMiB, 0}), Verdict::kAdmit);
  EXPECT_EQ(controller.Probe({"a", 2 * kGiB, 0}), Verdict::kReject);
  Grant held = controller.Admit({"held", 768 * kMiB, 0});
  EXPECT_EQ(controller.Probe({"b", 512 * kMiB, 128 * kMiB}), Verdict::kDegrade);
  EXPECT_EQ(controller.Probe({"b", 512 * kMiB, 0}), Verdict::kQueue);
  EXPECT_STREQ(FleetAdmissionController::VerdictName(Verdict::kDegrade), "degrade");
}

TEST(FleetAdmissionTest, EmitsMetricsWhenRegistryInstalled) {
  telemetry::MetricRegistry registry;
  FleetAdmissionController controller({1 * kGiB, 0});
  controller.set_metrics(&registry);
  Grant a = controller.Admit({"a", 512 * kMiB, 0});
  Grant b = controller.Admit({"b", 768 * kMiB, 256 * kMiB});  // Degraded.
  Grant c = controller.Admit({"c", 2 * kGiB, 0});             // Rejected.
  EXPECT_EQ(registry.GetCounter("admission.requests").value(), 3u);
  EXPECT_EQ(registry.GetCounter("admission.admitted").value(), 1u);
  EXPECT_EQ(registry.GetCounter("admission.degraded").value(), 1u);
  EXPECT_EQ(registry.GetCounter("admission.rejected").value(), 1u);
  EXPECT_EQ(registry.GetGauge("admission.committed_bytes").value(),
            static_cast<int64_t>(768 * kMiB));
  a.Release();
  EXPECT_EQ(registry.GetGauge("admission.committed_bytes").value(),
            static_cast<int64_t>(256 * kMiB));
  EXPECT_EQ(registry.GetGauge("admission.peak_committed_bytes").value(),
            static_cast<int64_t>(768 * kMiB));
}

// tsan leg: many threads admit/hold/release against a tight budget; the
// invariant the controller must keep under contention is committed <= budget
// at every grant and a clean drain at the end.
TEST(AdmissionStormTest, ConcurrentAdmitHoldReleaseStaysUnderBudget) {
  constexpr Bytes kBudget = 256 * kMiB;
  constexpr size_t kThreads = 8;
  constexpr int kIterations = 50;
  FleetAdmissionController controller({kBudget, 0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&controller, kBudget] {
      for (int i = 0; i < kIterations; ++i) {
        Grant grant = controller.Admit({"storm", 64 * kMiB, 16 * kMiB});
        ASSERT_TRUE(grant.valid());  // 64 MiB always fits eventually.
        ASSERT_LE(controller.stats().committed, kBudget);
        std::this_thread::yield();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  FleetAdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.requests, kThreads * kIterations);
  EXPECT_EQ(stats.admitted + stats.degraded, kThreads * kIterations);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.committed, 0u);
  EXPECT_LE(stats.peak_committed, kBudget);
}


TEST(FleetAdmissionTest, TryAdmitGrantsWhatFitsNowAndNeverBlocks) {
  FleetAdmissionController controller({1 * kGiB, 0});
  Grant a = controller.TryAdmit({"a", 512 * kMiB, 0});
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(a.waited());
  Grant b = controller.TryAdmit({"b", 512 * kMiB, 0});
  EXPECT_TRUE(b.valid());
  // Budget exhausted: the non-blocking path denies instead of queueing.
  Grant c = controller.TryAdmit({"c", 512 * kMiB, 0});
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(controller.stats().try_denied, 1u);
  EXPECT_EQ(controller.stats().waiting, 0u);
  // Releasing capacity makes the next try succeed.
  a.Release();
  Grant d = controller.TryAdmit({"d", 512 * kMiB, 0});
  EXPECT_TRUE(d.valid());
}

TEST(FleetAdmissionTest, TryAdmitDegradesToTheFloorWhenFullDoesNotFit) {
  FleetAdmissionController controller({768 * kMiB, 0});
  Grant a = controller.TryAdmit({"a", 512 * kMiB, 0});
  ASSERT_TRUE(a.valid());
  // 512 full does not fit, the 128 floor does: degrade, immediately.
  Grant b = controller.TryAdmit({"b", 512 * kMiB, 128 * kMiB});
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(b.degraded());
  EXPECT_EQ(b.granted(), 128 * kMiB);
}

TEST(FleetAdmissionTest, TryAdmitRespectsTheFifoQueue) {
  // A waiter in the blocking queue outranks any TryAdmit: the front door
  // must not starve launches that were promised capacity first.
  FleetAdmissionController controller({1 * kGiB, 0});
  Grant hold = controller.Admit({"hold", 768 * kMiB, 0});
  auto queued = std::async(std::launch::async, [&controller] {
    return controller.Admit({"queued", 512 * kMiB, 0});
  });
  WaitForWaiters(controller, 1);
  // 256 MiB is free, but the queued 512 MiB launch was first in line.
  Grant sneak = controller.TryAdmit({"sneak", 128 * kMiB, 0});
  EXPECT_FALSE(sneak.valid());
  hold.Release();
  Grant promoted = queued.get();
  EXPECT_TRUE(promoted.valid());
  // Queue drained: TryAdmit works again.
  Grant after = controller.TryAdmit({"after", 128 * kMiB, 0});
  EXPECT_TRUE(after.valid());
}

}  // namespace
}  // namespace lupine::vmm

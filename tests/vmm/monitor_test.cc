#include "src/vmm/monitor.h"

#include <gtest/gtest.h>

namespace lupine::vmm {
namespace {

TEST(MonitorTest, UnikernelMonitorsAreLighterThanFirecracker) {
  Bytes image = 4 * kMiB;
  Nanos fc = MonitorSetupTime(Firecracker(), image);
  Nanos solo5 = MonitorSetupTime(Solo5Hvt(), image);
  Nanos uhyve = MonitorSetupTime(Uhyve(), image);
  EXPECT_LT(solo5, fc);
  EXPECT_LT(uhyve, fc);
}

TEST(MonitorTest, QemuIsTheHeavyweight) {
  Bytes image = 4 * kMiB;
  Nanos fc = MonitorSetupTime(Firecracker(), image);
  Nanos qemu = MonitorSetupTime(Qemu(), image);
  // "hundreds of milliseconds ... for VMs" (Section 2.2).
  EXPECT_GT(qemu, 10 * fc);
  EXPECT_TRUE(Qemu().pci_bus);
  EXPECT_FALSE(Firecracker().pci_bus);
}

TEST(MonitorTest, LargerImagesLoadSlower) {
  Nanos small = MonitorSetupTime(Firecracker(), 4 * kMiB);
  Nanos large = MonitorSetupTime(Firecracker(), 15 * kMiB);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace lupine::vmm

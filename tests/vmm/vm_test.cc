#include "src/vmm/vm.h"

#include <gtest/gtest.h>

#include "src/apps/builtin.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/presets.h"

namespace lupine::vmm {
namespace {

VmSpec HelloSpec(Bytes memory = 512 * kMiB) {
  apps::RegisterBuiltinApps();
  kbuild::ImageBuilder builder;
  auto image = builder.Build(kconfig::LupineGeneral());
  EXPECT_TRUE(image.ok());
  VmSpec spec;
  spec.monitor = Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildAppRootfsForApp("hello-world", /*kml_libc=*/false);
  spec.memory = memory;
  return spec;
}

TEST(VmTest, BootProducesPhaseReport) {
  Vm vm(HelloSpec());
  ASSERT_TRUE(vm.Boot().ok());
  const BootReport& report = vm.boot_report();
  EXPECT_GT(report.total, 0);
  EXPECT_EQ(report.total, report.to_init);
  ASSERT_FALSE(report.phases.empty());
  EXPECT_EQ(report.phases.front().name, "monitor:firecracker");
  Nanos sum = 0;
  for (const auto& phase : report.phases) {
    sum += phase.duration;
  }
  EXPECT_EQ(sum, report.total);
}

TEST(VmTest, HelloRunsToCompletion) {
  Vm vm(HelloSpec());
  auto result = vm.BootAndRun();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString() << "\n" << result.console;
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.console.find("Hello from Docker!"), std::string::npos);
}

TEST(VmTest, RunWithoutBootFails) {
  Vm vm(HelloSpec());
  EXPECT_FALSE(vm.RunToCompletion().ok());
}

TEST(VmTest, InsufficientMemoryFailsBoot) {
  Vm vm(HelloSpec(2 * kMiB));
  EXPECT_FALSE(vm.Boot().ok());
}

TEST(MinMemoryProbeTest, FindsThreshold) {
  Bytes result = MinMemoryProbe(kMiB, 64 * kMiB,
                                [](Bytes memory) { return memory >= 21 * kMiB; });
  EXPECT_EQ(result, 21 * kMiB);
}

TEST(MinMemoryProbeTest, ZeroWhenCeilingFails) {
  EXPECT_EQ(MinMemoryProbe(kMiB, 16 * kMiB, [](Bytes) { return false; }), 0u);
}

TEST(MinMemoryProbeTest, HelloFootprintIsDeterministic) {
  auto try_run = [&](Bytes memory) {
    Vm vm(HelloSpec(memory));
    auto result = vm.BootAndRun();
    return result.status.ok() && result.exit_code == 0;
  };
  Bytes a = MinMemoryProbe(kMiB, 256 * kMiB, try_run);
  Bytes b = MinMemoryProbe(kMiB, 256 * kMiB, try_run);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 4 * kMiB);
  EXPECT_LT(a, 64 * kMiB);
}

}  // namespace
}  // namespace lupine::vmm

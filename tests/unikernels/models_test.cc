#include "src/unikernels/unikernel_models.h"

#include <gtest/gtest.h>

namespace lupine::unikernels {
namespace {

TEST(ModelsTest, CuratedAppListsEnforced) {
  UnikernelModel hermitux(HermituxProfile());
  EXPECT_TRUE(hermitux.Supports("redis").supported);
  // "Unfortunately, HermiTux cannot run nginx" (Section 4.4).
  EXPECT_FALSE(hermitux.Supports("nginx").supported);
  EXPECT_FALSE(hermitux.Supports("postgres").supported);

  UnikernelModel osv(OsvProfile());
  EXPECT_TRUE(osv.Supports("nginx").supported);
  EXPECT_FALSE(osv.Supports("mysql").supported);
}

TEST(ModelsTest, MonitorsMatchTable2) {
  EXPECT_EQ(UnikernelModel(OsvProfile()).monitor(), "firecracker");
  EXPECT_EQ(UnikernelModel(HermituxProfile()).monitor(), "uhyve");
  EXPECT_EQ(UnikernelModel(RumpProfile()).monitor(), "solo5-hvt");
}

TEST(ModelsTest, OsvZfsBootsTenTimesSlowerThanRofs) {
  UnikernelModel rofs(OsvProfile(false));
  UnikernelModel zfs(OsvProfile(true));
  auto fast = rofs.BootTime("hello-world");
  auto slow = zfs.BootTime("hello-world");
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GE(slow.value(), 8 * fast.value());
}

TEST(ModelsTest, RumpImageGrowsWithStaticApp) {
  UnikernelModel rump(RumpProfile());
  auto hello = rump.KernelImageSize("hello-world");
  auto redis = rump.KernelImageSize("redis");
  ASSERT_TRUE(hello.ok());
  ASSERT_TRUE(redis.ok());
  EXPECT_GT(redis.value(), hello.value());
}

TEST(ModelsTest, FootprintRefusedForUnsupportedApps) {
  UnikernelModel hermitux(HermituxProfile());
  auto footprint = hermitux.MemoryFootprint("nginx");
  EXPECT_FALSE(footprint.ok());
  EXPECT_EQ(footprint.err(), Err::kOpNotSupp);
}

TEST(ModelsTest, OsvSyscallQuirks) {
  UnikernelModel osv(OsvProfile());
  auto lat = osv.SyscallLatency();
  ASSERT_TRUE(lat.ok());
  // Hardcoded getppid -> near zero; /dev/zero read unsupported -> slow.
  EXPECT_LT(lat->null_us, 0.01);
  EXPECT_GT(lat->read_us, 0.1);
}

TEST(ModelsTest, NginxThroughputUnavailableOnOsvAndHermitux) {
  UnikernelModel osv(OsvProfile());
  UnikernelModel hermitux(HermituxProfile());
  EXPECT_FALSE(osv.NginxThroughput(false).ok());
  EXPECT_FALSE(hermitux.NginxThroughput(true).ok());
}

TEST(ModelsTest, ThroughputAnchoredBelowMicrovmForHermitux) {
  auto baseline = MicrovmBaselineRps("redis-get");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  UnikernelModel hermitux(HermituxProfile());
  auto rps = hermitux.RedisThroughput(false);
  ASSERT_TRUE(rps.ok());
  EXPECT_NEAR(rps.value() / baseline.value(), 0.66, 0.01);
}

TEST(ModelsTest, RumpBeatsMicrovmOnNginxConn) {
  auto baseline = MicrovmBaselineRps("nginx-conn");
  ASSERT_TRUE(baseline.ok());
  UnikernelModel rump(RumpProfile());
  auto rps = rump.NginxThroughput(false);
  ASSERT_TRUE(rps.ok());
  EXPECT_GT(rps.value(), baseline.value());
}

}  // namespace
}  // namespace lupine::unikernels

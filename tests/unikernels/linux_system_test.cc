#include "src/unikernels/linux_system.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"

namespace lupine::unikernels {
namespace {

namespace n = kconfig::names;

TEST(LinuxSystemTest, VariantConfigsBuild) {
  for (const auto& spec : {MicrovmSpec(), LupineSpec(), LupineNokmlSpec(), LupineTinySpec(),
                           LupineNokmlTinySpec(), LupineGeneralSpec(),
                           LupineGeneralNokmlSpec()}) {
    auto config = BuildVariantConfig(spec, "redis");
    ASSERT_TRUE(config.ok()) << spec.name;
    EXPECT_EQ(config->IsEnabled(n::kKml), spec.kml) << spec.name;
    if (spec.tiny) {
      EXPECT_EQ(config->compile_mode(), kconfig::CompileMode::kOs) << spec.name;
    }
  }
}

TEST(LinuxSystemTest, KmlVariantDropsParavirt) {
  auto kml = BuildVariantConfig(LupineSpec(), "redis");
  auto nokml = BuildVariantConfig(LupineNokmlSpec(), "redis");
  ASSERT_TRUE(kml.ok());
  ASSERT_TRUE(nokml.ok());
  EXPECT_FALSE(kml->IsEnabled(n::kParavirt));
  EXPECT_TRUE(nokml->IsEnabled(n::kParavirt));
}

TEST(LinuxSystemTest, SupportsEverything) {
  LinuxSystem lupine(LupineSpec());
  EXPECT_TRUE(lupine.Supports("redis").supported);
  EXPECT_TRUE(lupine.Supports("postgres").supported);
  EXPECT_TRUE(lupine.Supports("anything-else").supported);
}

TEST(LinuxSystemTest, ImageSizesOrdered) {
  LinuxSystem microvm(MicrovmSpec());
  LinuxSystem lupine(LupineSpec());
  LinuxSystem general(LupineGeneralSpec());
  auto m = microvm.KernelImageSize("hello-world");
  auto l = lupine.KernelImageSize("hello-world");
  auto g = general.KernelImageSize("hello-world");
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(g.ok());
  EXPECT_LT(l.value(), m.value());
  EXPECT_LE(l.value(), g.value());
  EXPECT_LT(g.value(), m.value());
}

TEST(LinuxSystemTest, BootTimeLupineFasterThanMicrovm) {
  LinuxSystem microvm(MicrovmSpec());
  LinuxSystem lupine(LupineNokmlSpec());
  auto m = microvm.BootTime("hello-world");
  auto l = lupine.BootTime("hello-world");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  EXPECT_LT(l.value(), m.value());
  // Around 23 ms vs 56 ms (abstract, Fig. 7); allow simulation bands.
  EXPECT_GT(ToMillis(l.value()), 10);
  EXPECT_LT(ToMillis(l.value()), 35);
  EXPECT_GT(ToMillis(m.value()), 40);
}

TEST(LinuxSystemTest, SyscallLatencyMeasured) {
  LinuxSystem lupine(LupineSpec());
  auto lat = lupine.SyscallLatency();
  ASSERT_TRUE(lat.ok()) << lat.status().ToString();
  EXPECT_GT(lat->null_us, 0);
  EXPECT_LT(lat->null_us, 0.1);
}

}  // namespace
}  // namespace lupine::unikernels

// Cross-system claims: Lupine outperforms at least one reference unikernel
// in every dimension (the paper's headline).
#include <gtest/gtest.h>

#include "src/core/lineup.h"

namespace lupine::unikernels {
namespace {

TEST(ComparisonsTest, LupineBeatsAtLeastOneUnikernelInEveryDimension) {
  LinuxSystem lupine(LupineSpec());
  std::vector<std::unique_ptr<UnikernelModel>> unikernels;
  unikernels.push_back(std::make_unique<UnikernelModel>(OsvProfile()));
  unikernels.push_back(std::make_unique<UnikernelModel>(HermituxProfile()));
  unikernels.push_back(std::make_unique<UnikernelModel>(RumpProfile()));

  // Image size.
  auto lupine_size = lupine.KernelImageSize("hello-world");
  ASSERT_TRUE(lupine_size.ok());
  int beaten = 0;
  for (auto& u : unikernels) {
    auto size = u->KernelImageSize("hello-world");
    if (size.ok() && lupine_size.value() < size.value()) {
      ++beaten;
    }
  }
  EXPECT_GE(beaten, 1) << "image size";

  // Boot time (nokml variant, as in Fig. 7).
  LinuxSystem nokml(LupineNokmlSpec());
  auto lupine_boot = nokml.BootTime("hello-world");
  ASSERT_TRUE(lupine_boot.ok());
  beaten = 0;
  for (auto& u : unikernels) {
    auto boot = u->BootTime("hello-world");
    if (boot.ok() && lupine_boot.value() < boot.value()) {
      ++beaten;
    }
  }
  EXPECT_GE(beaten, 1) << "boot time";

  // Memory footprint on redis (paper: smaller than every unikernel).
  auto lupine_mem = lupine.MemoryFootprint("redis");
  ASSERT_TRUE(lupine_mem.ok());
  for (auto& u : unikernels) {
    auto mem = u->MemoryFootprint("redis");
    ASSERT_TRUE(mem.ok()) << u->name();
    EXPECT_LT(lupine_mem.value(), mem.value() + kMiB) << u->name();
  }

  // Syscall latency (null).
  auto lupine_lat = lupine.SyscallLatency();
  ASSERT_TRUE(lupine_lat.ok());
  beaten = 0;
  for (auto& u : unikernels) {
    auto lat = u->SyscallLatency();
    if (lat.ok() && lupine_lat->null_us < lat->null_us) {
      ++beaten;
    }
  }
  EXPECT_GE(beaten, 1) << "syscall latency";

  // Application performance: Lupine beats every unikernel on redis-get.
  auto lupine_rps = lupine.RedisThroughput(false);
  ASSERT_TRUE(lupine_rps.ok());
  for (auto& u : unikernels) {
    auto rps = u->RedisThroughput(false);
    ASSERT_TRUE(rps.ok()) << u->name();
    EXPECT_GT(lupine_rps.value(), rps.value()) << u->name();
  }
}

TEST(ComparisonsTest, LineupsAreWellFormed) {
  for (auto* lineup_fn : {core::ImageSizeLineup, core::BootTimeLineup, core::MemoryLineup,
                          core::SyscallLineup, core::AppPerfLineup}) {
    auto lineup = lineup_fn();
    EXPECT_GE(lineup.size(), 6u);
    std::set<std::string> names;
    for (auto& system : lineup) {
      EXPECT_FALSE(system->name().empty());
      names.insert(system->name());
    }
    EXPECT_EQ(names.size(), lineup.size()) << "duplicate system in lineup";
    // microVM baseline always present.
    EXPECT_TRUE(names.count("microvm"));
  }
}

TEST(ComparisonsTest, EveryLineupSystemReportsImageSize) {
  for (auto& system : core::ImageSizeLineup()) {
    auto size = system->KernelImageSize("hello-world");
    ASSERT_TRUE(size.ok()) << system->name();
    EXPECT_GT(size.value(), 512 * kKiB) << system->name();
    EXPECT_LT(size.value(), 20 * kMiB) << system->name();
  }
}

}  // namespace
}  // namespace lupine::unikernels

// Section 5: Lupine degrades gracefully where unikernels crash.
#include <gtest/gtest.h>

#include "src/unikernels/linux_system.h"
#include "src/unikernels/unikernel_models.h"
#include "src/workload/control_procs.h"
#include "src/workload/spawn.h"

namespace lupine {
namespace {

using unikernels::LinuxSystem;
using unikernels::UnikernelModel;

TEST(GracefulDegradationTest, LupineRunsForkingAppsUnikernelsDoNot) {
  LinuxSystem lupine(unikernels::LupineSpec());
  EXPECT_TRUE(lupine.Supports("postgres").supported);

  UnikernelModel osv(unikernels::OsvProfile());
  UnikernelModel hermitux(unikernels::HermituxProfile());
  UnikernelModel rump(unikernels::RumpProfile());
  EXPECT_FALSE(osv.Supports("postgres").supported);
  EXPECT_FALSE(hermitux.Supports("postgres").supported);
  EXPECT_FALSE(rump.Supports("postgres").supported);
  EXPECT_FALSE(osv.profile().supports_fork);
}

TEST(GracefulDegradationTest, ForkJustWorksOnLupine) {
  LinuxSystem lupine(unikernels::LupineSpec());
  auto vm = lupine.MakeVm("postgres", 512 * kMiB);
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE((*vm)->Boot().ok());
  (*vm)->kernel().Run();
  EXPECT_TRUE((*vm)->kernel().console().Contains("ready to accept connections"));
  // The postmaster (init exec'd into it) + 4 forked background workers.
  EXPECT_GE((*vm)->kernel().ProcessCount(), 5u);
}

TEST(GracefulDegradationTest, ControlProcessesDoNotHurtLatency) {
  // Fig. 11: syscall latency flat as 2^i sleeping control processes appear.
  LinuxSystem lupine(unikernels::LupineGeneralSpec());
  auto vm0 = lupine.MakeVm("hello-world", 512 * kMiB, true);
  ASSERT_TRUE(vm0.ok());
  ASSERT_TRUE((*vm0)->Boot().ok());
  (*vm0)->kernel().Run();
  auto base = workload::MeasureWithControlProcs(**vm0, 0);

  auto vm256 = lupine.MakeVm("hello-world", 512 * kMiB, true);
  ASSERT_TRUE(vm256.ok());
  ASSERT_TRUE((*vm256)->Boot().ok());
  (*vm256)->kernel().Run();
  auto many = workload::MeasureWithControlProcs(**vm256, 256);

  EXPECT_NEAR(many.null_us, base.null_us, base.null_us * 0.10 + 0.001);
  EXPECT_NEAR(many.read_us, base.read_us, base.read_us * 0.10 + 0.001);
  EXPECT_NEAR(many.write_us, base.write_us, base.write_us * 0.10 + 0.001);
}

TEST(GracefulDegradationTest, MultipleAddressSpacesEssentiallyFree) {
  // Section 5: address-space switches cost ~nothing with PCID-style tagging.
  const auto& costs = guestos::DefaultCostModel();
  EXPECT_LT(costs.ctxsw_address_space, costs.ctxsw_registers / 5);
}

}  // namespace
}  // namespace lupine

// Light-weight versions of the paper's headline claims, run end-to-end.
#include <gtest/gtest.h>

#include "src/unikernels/linux_system.h"
#include "src/unikernels/unikernel_models.h"
#include "src/workload/app_bench.h"
#include "src/workload/kml_bench.h"

namespace lupine {
namespace {

using unikernels::LinuxSystem;
using unikernels::UnikernelModel;

TEST(ExperimentsTest, ImageSizeClaim) {
  // "Lupine achieves up to 73% smaller image size ... than the state-of-
  // the-art VM" (Section 4).
  LinuxSystem microvm(unikernels::MicrovmSpec());
  LinuxSystem lupine(unikernels::LupineSpec());
  auto m = microvm.KernelImageSize("hello-world");
  auto l = lupine.KernelImageSize("hello-world");
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(l.ok());
  double reduction = 1.0 - static_cast<double>(l.value()) / static_cast<double>(m.value());
  EXPECT_GT(reduction, 0.64);
  EXPECT_LT(reduction, 0.80);
}

TEST(ExperimentsTest, BootTimeClaim) {
  // "59% faster boot time" (Section 4); lupine ~23 ms.
  LinuxSystem microvm(unikernels::MicrovmSpec());
  LinuxSystem lupine(unikernels::LupineNokmlSpec());
  auto m = microvm.BootTime("hello-world");
  auto l = lupine.BootTime("hello-world");
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(l.ok());
  double reduction = 1.0 - static_cast<double>(l.value()) / static_cast<double>(m.value());
  EXPECT_GT(reduction, 0.45);
  EXPECT_LT(reduction, 0.75);
}

TEST(ExperimentsTest, GeneralKernelBootsOnly2msSlower) {
  LinuxSystem app_specific(unikernels::LupineNokmlSpec());
  LinuxSystem general(unikernels::LupineGeneralNokmlSpec());
  auto a = app_specific.BootTime("hello-world");
  auto g = general.BootTime("hello-world");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(g.ok());
  Nanos delta = g.value() - a.value();
  EXPECT_GT(delta, 0);
  EXPECT_LT(delta, Millis(4));  // "an additional boot time of 2 ms".
}

TEST(ExperimentsTest, KmlNullSyscall40PercentAmortizedAway) {
  LinuxSystem kml(unikernels::LupineGeneralSpec());
  LinuxSystem nokml(unikernels::LupineGeneralNokmlSpec());

  auto make_vm = [](LinuxSystem& s) {
    auto vm = s.MakeVm("hello-world", 512 * kMiB, true);
    EXPECT_TRUE(vm.ok());
    auto owned = std::move(vm.value());
    EXPECT_TRUE(owned->Boot().ok());
    owned->kernel().Run();
    return owned;
  };

  auto kml_vm = make_vm(kml);
  auto nokml_vm = make_vm(nokml);
  double at0_kml = workload::MeasureNullWithWorkUs(*kml_vm, 0, 500);
  double at0_nokml = workload::MeasureNullWithWorkUs(*nokml_vm, 0, 500);
  double improvement0 = 1.0 - at0_kml / at0_nokml;
  EXPECT_GT(improvement0, 0.30);  // ~40% at zero busy work (Fig. 10).

  auto kml_vm2 = make_vm(kml);
  auto nokml_vm2 = make_vm(nokml);
  double at160_kml = workload::MeasureNullWithWorkUs(*kml_vm2, 160, 500);
  double at160_nokml = workload::MeasureNullWithWorkUs(*nokml_vm2, 160, 500);
  double improvement160 = 1.0 - at160_kml / at160_nokml;
  EXPECT_LT(improvement160, 0.07);  // Amortized below 5% near 160 iterations.
}

TEST(ExperimentsTest, LupineBeatsMicrovmOnRedis) {
  LinuxSystem microvm(unikernels::MicrovmSpec());
  LinuxSystem lupine(unikernels::LupineSpec());
  auto m = microvm.RedisThroughput(false);
  auto l = lupine.RedisThroughput(false);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  double speedup = l.value() / m.value();
  // Table 4: 1.21x for redis-get; accept a simulation band.
  EXPECT_GT(speedup, 1.10);
  EXPECT_LT(speedup, 1.40);
}

TEST(ExperimentsTest, KmlContributesLittleToMacrobenchmarks) {
  // "KML adds at most 4 percentage points" (Section 4.6).
  LinuxSystem kml(unikernels::LupineSpec());
  LinuxSystem nokml(unikernels::LupineNokmlSpec());
  auto with = kml.RedisThroughput(false);
  auto without = nokml.RedisThroughput(false);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  double delta = with.value() / without.value() - 1.0;
  EXPECT_GE(delta, -0.01);
  EXPECT_LT(delta, 0.08);
}

TEST(ExperimentsTest, MemoryFootprintClaim) {
  // Abstract: 21 MB lupine vs microVM ~29 MB (28% lower).
  LinuxSystem microvm(unikernels::MicrovmSpec());
  LinuxSystem lupine(unikernels::LupineSpec());
  auto m = microvm.MemoryFootprint("hello-world");
  auto l = lupine.MemoryFootprint("hello-world");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  EXPECT_LT(l.value(), m.value());
  double reduction = 1.0 - static_cast<double>(l.value()) / static_cast<double>(m.value());
  EXPECT_GT(reduction, 0.15);
  EXPECT_LT(reduction, 0.45);
}

TEST(ExperimentsTest, LinuxFootprintFlatAcrossApps) {
  // Section 4.4: Linux-based footprints barely vary between applications.
  LinuxSystem lupine(unikernels::LupineGeneralSpec());
  auto hello = lupine.MemoryFootprint("hello-world");
  auto redis = lupine.MemoryFootprint("redis");
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  ASSERT_TRUE(redis.ok()) << redis.status().ToString();
  double ratio = static_cast<double>(redis.value()) / static_cast<double>(hello.value());
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace lupine

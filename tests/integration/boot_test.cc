// End-to-end: every Linux variant boots hello-world from its rootfs.
#include <gtest/gtest.h>

#include "src/apps/manifest.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/unikernels/linux_system.h"

namespace lupine {
namespace {

using unikernels::LinuxSystem;
using unikernels::LinuxVariantSpec;

class BootEveryVariant : public ::testing::TestWithParam<int> {};

LinuxVariantSpec VariantByIndex(int i) {
  switch (i) {
    case 0: return unikernels::MicrovmSpec();
    case 1: return unikernels::LupineSpec();
    case 2: return unikernels::LupineNokmlSpec();
    case 3: return unikernels::LupineTinySpec();
    case 4: return unikernels::LupineNokmlTinySpec();
    case 5: return unikernels::LupineGeneralSpec();
    default: return unikernels::LupineGeneralNokmlSpec();
  }
}

TEST_P(BootEveryVariant, HelloWorldBootsAndExits) {
  LinuxSystem system(VariantByIndex(GetParam()));
  auto vm = system.MakeVm("hello-world", 512 * kMiB);
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();
  auto result = (*vm)->BootAndRun();
  ASSERT_TRUE(result.status.ok()) << system.name() << ": " << result.status.ToString() << "\n"
                                  << result.console;
  EXPECT_EQ(result.exit_code, 0) << result.console;
  EXPECT_NE(result.console.find("Hello from Docker!"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BootEveryVariant, ::testing::Range(0, 7));

TEST(BootIntegrationTest, BootReportPhasesExplainTotal) {
  LinuxSystem system(unikernels::LupineNokmlSpec());
  auto vm = system.MakeVm("hello-world", 512 * kMiB);
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE((*vm)->Boot().ok());
  Nanos sum = 0;
  for (const auto& phase : (*vm)->boot_report().phases) {
    EXPECT_GE(phase.duration, 0) << phase.name;
    sum += phase.duration;
  }
  EXPECT_EQ(sum, (*vm)->boot_report().total);
}

TEST(BootIntegrationTest, ServersReachReadiness) {
  for (const std::string app : {"redis", "nginx", "postgres"}) {
    LinuxSystem system(unikernels::LupineSpec());
    auto vm = system.MakeVm(app, 512 * kMiB);
    ASSERT_TRUE(vm.ok()) << app;
    ASSERT_TRUE((*vm)->Boot().ok()) << app;
    (*vm)->kernel().Run();
    const auto* manifest = apps::FindManifest(app);
    EXPECT_TRUE((*vm)->kernel().console().Contains(manifest->ready_line))
        << app << "\n"
        << (*vm)->kernel().console().contents();
  }
}

TEST(BootIntegrationTest, AppOnWrongKernelFailsWithDiagnostic) {
  // redis booted on the hello-world (0-option) kernel: first probe fails.
  unikernels::LinuxSystem system(unikernels::LupineSpec());
  auto config = unikernels::BuildVariantConfig(unikernels::LupineSpec(), "hello-world");
  ASSERT_TRUE(config.ok());
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config.value());
  ASSERT_TRUE(image.ok());
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildAppRootfsForApp("redis", /*kml_libc=*/true);
  vmm::Vm vm(std::move(spec));
  auto result = vm.BootAndRun();
  EXPECT_NE(result.console.find("futex facility"), std::string::npos) << result.console;
}

}  // namespace
}  // namespace lupine

#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/telemetry/export.h"
#include "src/telemetry/span.h"
#include "src/util/thread_pool.h"

namespace lupine::telemetry {
namespace {

TEST(MetricRegistryTest, CounterFindOrCreateIsStable) {
  MetricRegistry registry;
  Counter& a = registry.GetCounter("fleet.boots");
  a.Increment();
  a.Increment(4);
  // Same (name, labels) resolves to the same cell.
  EXPECT_EQ(&registry.GetCounter("fleet.boots"), &a);
  EXPECT_EQ(registry.GetCounter("fleet.boots").value(), 5u);
}

TEST(MetricRegistryTest, LabelsAreCanonicalizedBySortedKey) {
  MetricRegistry registry;
  Counter& ab = registry.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  Counter& ba = registry.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
  // Different label values are distinct cells.
  EXPECT_NE(&ab, &registry.GetCounter("x", {{"a", "1"}, {"b", "3"}}));
}

TEST(MetricRegistryTest, GaugeSetAddSetMax) {
  MetricRegistry registry;
  Gauge& gauge = registry.GetGauge("admission.committed_bytes");
  gauge.Set(100);
  gauge.Add(-30);
  EXPECT_EQ(gauge.value(), 70);
  gauge.SetMax(50);  // Lower: no effect.
  EXPECT_EQ(gauge.value(), 70);
  gauge.SetMax(90);
  EXPECT_EQ(gauge.value(), 90);
}

TEST(MetricRegistryTest, HistogramSummaryAndPercentiles) {
  MetricRegistry registry;
  Histogram& h = registry.GetHistogram("boot.phase_ns");
  for (int i = 1; i <= 100; ++i) {
    h.Observe(static_cast<double>(i));
  }
  Histogram::Summary s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.5);
  EXPECT_NEAR(s.p99, 99.0, 1.5);
}

TEST(MetricRegistryTest, CollectIsStableOrderAndComplete) {
  MetricRegistry registry;
  registry.GetCounter("b.count").Increment();
  registry.GetCounter("a.count", {{"vm", "redis"}}).Increment(2);
  registry.GetGauge("c.bytes").Set(7);
  registry.GetHistogram("d.ns").Observe(1.0);

  MetricRegistry::Snapshot snapshot = registry.Collect();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.count");
  EXPECT_EQ(snapshot.counters[0].value, 2u);
  EXPECT_EQ(snapshot.counters[1].name, "b.count");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 7);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.size(), 4u);
}

TEST(MetricRegistryTest, FormatLabels) {
  EXPECT_EQ(FormatLabels({}), "");
  EXPECT_EQ(FormatLabels({{"app", "redis"}, {"worker", "3"}}), "{app=redis,worker=3}");
}

TEST(SpanTraceTest, AddPhaseChainsAtCursor) {
  SpanTrace trace;
  trace.AddPhase("decompress", 100);
  trace.AddPhase("core-init", 50);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[1].start, 100);
  EXPECT_EQ(trace.spans()[1].end, 150);
  EXPECT_EQ(trace.cursor(), 150);
  EXPECT_EQ(trace.TotalDuration(), 150);
}

TEST(SpanTraceTest, ExtendRebasesOtherTimeline) {
  SpanTrace provisioning;
  provisioning.AddPhase("build", 40);
  SpanTrace boot;
  boot.Record("decompress", 0, 10);
  boot.Record("core-init", 10, 30);

  SpanTrace pipeline;
  pipeline.Extend(provisioning);
  pipeline.Extend(boot);
  ASSERT_EQ(pipeline.spans().size(), 3u);
  EXPECT_EQ(pipeline.spans()[1].name, "decompress");
  EXPECT_EQ(pipeline.spans()[1].start, 40);
  EXPECT_EQ(pipeline.spans()[2].end, 70);
  const Span* found = pipeline.Find("core-init");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->duration(), 20);
}

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(ExportTest, RegistryRendersValidShape) {
  MetricRegistry registry;
  registry.GetCounter("fleet.boots", {{"variant", "lupine"}}).Increment(3);
  registry.GetGauge("fleet.resident_peak_bytes").Set(1024);
  registry.GetHistogram("boot.to_init_ns").Observe(5.0);
  std::string json = ExportJson(registry);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet.boots\""), std::string::npos);
  EXPECT_NE(json.find("\"variant\": \"lupine\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 1024"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ExportTest, SpanTraceRendersArray) {
  SpanTrace trace;
  trace.AddPhase("decompress", 10);
  std::string json = ToJson(trace);
  EXPECT_NE(json.find("\"decompress\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\": 10"), std::string::npos);
}

TEST(ExportTest, IdenticalRegistriesExportIdenticalBytes) {
  auto fill = [](MetricRegistry& registry) {
    registry.GetCounter("z.count").Increment();
    registry.GetCounter("a.count", {{"k", "v"}}).Increment(2);
    registry.GetHistogram("h.ns").Observe(3.5);
    registry.GetGauge("g.bytes").Set(-4);
  };
  MetricRegistry r1, r2;
  fill(r1);
  fill(r2);
  EXPECT_EQ(ExportJson(r1), ExportJson(r2));
}

// tsan leg: hammer one registry from pool workers — find-or-create races,
// label canonicalization races, concurrent Observe on shared cells, and
// Collect() racing updates.
TEST(TelemetryConcurrencyTest, RegistryStormFromPoolWorkers) {
  MetricRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr int kIterations = 500;
  ThreadPool pool(kThreads);
  std::vector<std::future<void>> futures;
  futures.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    futures.push_back(pool.Submit([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter("storm.events").Increment();
        registry.GetCounter("storm.by_worker", {{"worker", std::to_string(t)}})
            .Increment();
        registry.GetGauge("storm.level").Set(static_cast<int64_t>(i));
        registry.GetGauge("storm.peak").SetMax(static_cast<int64_t>(i));
        registry.GetHistogram("storm.latency_ns").Observe(static_cast<double>(i));
        if (i % 64 == 0) {
          MetricRegistry::Snapshot snapshot = registry.Collect();
          ASSERT_GE(snapshot.size(), 1u);
        }
      }
    }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(registry.GetCounter("storm.events").value(), kThreads * kIterations);
  std::set<std::string> seen;
  for (const auto& sample : registry.Collect().counters) {
    if (sample.name == "storm.by_worker") {
      EXPECT_EQ(sample.value, static_cast<uint64_t>(kIterations));
      seen.insert(FormatLabels(sample.labels));
    }
  }
  EXPECT_EQ(seen.size(), kThreads);
  EXPECT_EQ(registry.GetHistogram("storm.latency_ns").count(), kThreads * kIterations);
  EXPECT_EQ(registry.GetGauge("storm.peak").value(), kIterations - 1);
}

}  // namespace
}  // namespace lupine::telemetry

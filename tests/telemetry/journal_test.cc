// Journal unit coverage plus the JournalConcurrency storm (tsan leg: the
// suite name is in the CI filter — concurrent Emit against one journal).
#include "src/telemetry/journal.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/util/json.h"

namespace lupine::telemetry {
namespace {

TEST(JournalTest, EventLineRendersTypedFields) {
  Event event;
  event.at = 42;
  event.source = "fleet";
  event.type = "retry";
  event.fields = {{"attempt", FieldValue{int64_t{3}}},
                  {"bytes", FieldValue{uint64_t{7}}},
                  {"ratio", FieldValue{0.5}},
                  {"ok", FieldValue{true}},
                  {"app", FieldValue{std::string("nginx")}}};
  EXPECT_EQ(EventToJsonLine(event),
            R"({"at":42,"source":"fleet","type":"retry","attempt":3,"bytes":7,)"
            R"("ratio":0.5,"ok":true,"app":"nginx"})");
}

TEST(JournalTest, StringsInLinesAreEscaped) {
  Event event;
  event.source = "a\"b";
  event.type = "t\\t";
  event.fields = {{"k", FieldValue{std::string("line\nbreak")}}};
  const std::string line = EventToJsonLine(event);
  EXPECT_EQ(line, R"({"at":0,"source":"a\"b","type":"t\\t","k":"line\nbreak"})");
  // The line must round-trip through the parser.
  auto doc = ParseJson(line);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("k")->str, "line\nbreak");
}

TEST(JournalTest, ExportIsCanonicallySortedRegardlessOfEmissionOrder) {
  Journal a;
  a.Emit(20, "fleet", "task-done");
  a.Emit(10, "fleet", "task-start");
  a.Emit(10, "admission", "verdict");
  Journal b;
  b.Emit(10, "admission", "verdict");
  b.Emit(10, "fleet", "task-start");
  b.Emit(20, "fleet", "task-done");
  EXPECT_EQ(a.ExportJsonl(true), b.ExportJsonl(true));
  // (at, source, type): admission@10 before fleet@10 before fleet@20.
  const std::string jsonl = a.ExportJsonl(true);
  EXPECT_LT(jsonl.find("admission"), jsonl.find("task-start"));
  EXPECT_LT(jsonl.find("task-start"), jsonl.find("task-done"));
}

TEST(JournalTest, ScheduleScopedEventsAreExcludedFromCanonicalExport) {
  Journal journal;
  journal.Emit(1, "fleet", "task-start");
  Event steal;
  steal.at = 2;
  steal.source = "sched";
  steal.type = "steal";
  steal.schedule_scoped = true;
  journal.Emit(std::move(steal));

  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.Snapshot(/*include_schedule_scoped=*/true).size(), 2u);
  EXPECT_EQ(journal.Snapshot(/*include_schedule_scoped=*/false).size(), 1u);
  EXPECT_EQ(journal.ExportJsonl().find("steal"), std::string::npos);
  EXPECT_NE(journal.ExportJsonl(true).find("steal"), std::string::npos);
}

TEST(JournalTest, RingDropsOldestPerSourceAndCountsIt) {
  Journal journal(/*ring_capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    journal.Emit(i, "fleet", "e" + std::to_string(i));
  }
  journal.Emit(0, "supervisor", "probe");  // Other sources unaffected.
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.dropped(), 2u);
  EXPECT_EQ(journal.dropped("fleet"), 2u);
  EXPECT_EQ(journal.dropped("supervisor"), 0u);
  // Oldest dropped: e0/e1 gone, e2..e4 retained.
  const std::string jsonl = journal.ExportJsonl();
  EXPECT_EQ(jsonl.find("\"e0\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"e2\""), std::string::npos);
  // The drop is visible in the export itself.
  EXPECT_NE(jsonl.find(R"("source":"journal","type":"dropped","from":"fleet","count":2)"),
            std::string::npos);
}

TEST(JournalTest, ExportLinesAllParseAsJson) {
  Journal journal;
  journal.Emit(1, "fleet", "task-start", {{"app", FieldValue{std::string("redis")}}});
  journal.Emit(2, "kernel-cache", "hit", {{"key", FieldValue{std::string("a\x1f b")}}});
  std::string jsonl = journal.ExportJsonl(true);
  size_t start = 0;
  size_t lines = 0;
  while (start < jsonl.size()) {
    const size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    auto doc = ParseJson(jsonl.substr(start, end - start));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_TRUE(doc->is_object());
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(JournalTest, ClearResetsEventsAndDropCounters) {
  Journal journal(/*ring_capacity=*/1);
  journal.Emit(1, "fleet", "a");
  journal.Emit(2, "fleet", "b");
  EXPECT_EQ(journal.dropped(), 1u);
  journal.Clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_EQ(journal.ExportJsonl(true), "");
}

TEST(JournalConcurrencyTest, ConcurrentEmittersYieldTheFullMultiset) {
  // 8 threads x 500 events into distinct sources: nothing dropped, and the
  // canonical export equals a serial emission of the same multiset.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  Journal concurrent;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      const std::string source = "worker-" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        concurrent.Emit(i, source, "tick", {{"n", FieldValue{int64_t{i}}}});
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(concurrent.size(), size_t{kThreads} * kPerThread);
  EXPECT_EQ(concurrent.dropped(), 0u);

  Journal serial;
  for (int t = 0; t < kThreads; ++t) {
    const std::string source = "worker-" + std::to_string(t);
    for (int i = 0; i < kPerThread; ++i) {
      serial.Emit(i, source, "tick", {{"n", FieldValue{int64_t{i}}}});
    }
  }
  EXPECT_EQ(concurrent.ExportJsonl(true), serial.ExportJsonl(true));
}

TEST(JournalConcurrencyTest, ConcurrentEmitAndSnapshotAreSafe) {
  Journal journal(/*ring_capacity=*/64);
  std::thread emitter([&journal] {
    for (int i = 0; i < 2000; ++i) {
      journal.Emit(i, "fleet", "tick");
    }
  });
  size_t observed = 0;
  for (int i = 0; i < 50; ++i) {
    observed += journal.Snapshot().size();
    (void)journal.ExportJsonl();
    (void)journal.dropped();
  }
  emitter.join();
  EXPECT_LE(journal.size(), 64u);
  (void)observed;
}

}  // namespace
}  // namespace lupine::telemetry

// Validity of the merged Chrome trace_event export: the document parses as
// JSON, timestamps are monotonic within every tid, and counter tracks carry
// well-formed args.value entries.
#include "src/telemetry/export.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/telemetry/journal.h"
#include "src/telemetry/span.h"
#include "src/util/json.h"

namespace lupine::telemetry {
namespace {

TEST(TraceExportTest, MergedTraceParsesAndCarriesAllThreePhases) {
  std::vector<SpanTrace> timelines(2);
  timelines[0].Record("build", 0, Millis(2));
  timelines[0].Record("boot", Millis(2), Millis(5));
  timelines[1].Record("rootfs", Millis(1), Millis(3));

  Journal journal;
  journal.Emit(Millis(2), "fleet", "retry",
               {{"worker", FieldValue{int64_t{1}}}, {"app", FieldValue{std::string("redis")}}});
  Event scoped;
  scoped.at = Millis(3);
  scoped.source = "sched";
  scoped.type = "steal";
  scoped.schedule_scoped = true;  // The Perfetto merge includes these.
  journal.Emit(std::move(scoped));

  std::vector<CounterSeries> counters(1);
  counters[0].name = "fleet.tasks_inflight";
  counters[0].points = {{0, 1.0}, {Millis(2), 2.0}, {Millis(5), 0.0}};

  // The export is a bare trace_event array (Chrome/Perfetto accept both the
  // array and the {"traceEvents": ...} wrapper; the array keeps cat-ability).
  const std::string trace = ToChromeTrace(timelines, journal, counters);
  auto doc = ParseJson(trace);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_array());

  size_t spans = 0, instants = 0, counter_samples = 0;
  std::map<double, double> last_ts_by_tid;
  for (const JsonValue& event : doc->array) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    const JsonValue* ts = event.Find("ts");
    ASSERT_NE(ts, nullptr);
    const JsonValue* tid = event.Find("tid");
    ASSERT_NE(tid, nullptr);
    // Monotonic ts within a tid.
    auto [it, inserted] = last_ts_by_tid.emplace(tid->number, ts->number);
    if (!inserted) {
      EXPECT_GE(ts->number, it->second) << "tid " << tid->number;
      it->second = ts->number;
    }
    if (ph->str == "X") {
      ++spans;
      ASSERT_NE(event.Find("dur"), nullptr);
      EXPECT_GE(event.Find("dur")->number, 0.0);
    } else if (ph->str == "i") {
      ++instants;
      EXPECT_EQ(event.Find("s")->str, "t");  // Thread-scoped instants.
      ASSERT_NE(event.Find("args"), nullptr);
    } else if (ph->str == "C") {
      ++counter_samples;
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* value = args->Find("value");
      ASSERT_NE(value, nullptr);
      EXPECT_TRUE(value->is_number());
      EXPECT_EQ(event.Find("name")->str, "fleet.tasks_inflight");
    }
  }
  EXPECT_EQ(spans, 3u);
  EXPECT_EQ(instants, 2u);  // Schedule-scoped events ride in the merge.
  EXPECT_EQ(counter_samples, 3u);
}

TEST(TraceExportTest, InstantTidComesFromWorkerField) {
  Journal journal;
  journal.Emit(1, "fleet", "a", {{"worker", FieldValue{int64_t{7}}}});
  journal.Emit(2, "fleet", "b");  // No worker field: tid 0.
  const std::string trace = ToChromeTrace({}, journal, {});
  auto doc = ParseJson(trace);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const auto& events = doc->array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].Find("tid")->number, 7.0);
  EXPECT_DOUBLE_EQ(events[1].Find("tid")->number, 0.0);
  // Instant names compose source/type; args carry every field.
  EXPECT_EQ(events[0].Find("name")->str, "fleet/a");
  EXPECT_DOUBLE_EQ(events[0].Find("args")->Find("worker")->number, 7.0);
}

TEST(TraceExportTest, SpanOnlyOverloadStillRenders) {
  std::vector<SpanTrace> timelines(1);
  timelines[0].Record("stage \"q\"", 0, 1000);  // Escaping through the helper.
  const std::string trace = ToChromeTrace(timelines);
  auto doc = ParseJson(trace);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->array.size(), 1u);
  const JsonValue& event = doc->array[0];
  EXPECT_NE(event.Find("name")->str.find("stage \"q\""), std::string::npos);
}

}  // namespace
}  // namespace lupine::telemetry

// The serving front door: load generation, warm-pool mechanics, and the
// RunServing determinism/recovery contracts. ServingStormTest runs
// execute=true at several worker counts — bodies boot/restore but never run
// fibers, so the suite rides the tsan CI leg.
#include "src/serve/front_door.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/multik.h"
#include "src/core/snapshot_cache.h"
#include "src/serve/loadgen.h"
#include "src/serve/warm_pool.h"
#include "src/telemetry/journal.h"
#include "src/util/fault.h"

namespace lupine::serve {
namespace {

core::KernelCache& Cache() {
  static auto* cache = new core::KernelCache();
  return *cache;
}

std::vector<TenantSpec> Tenants(double multiplier = 1.0) {
  return {{"nginx", 120.0 * multiplier},
          {"redis", 80.0 * multiplier},
          {"postgres", 40.0 * multiplier}};
}

TEST(LoadgenTest, ArrivalsAreDeterministicSortedAndBounded) {
  const auto a = GenerateOpenLoopArrivals(Tenants(), Seconds(1), 7);
  const auto b = GenerateOpenLoopArrivals(Tenants(), Seconds(1), 7);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].index, i);
    EXPECT_LT(a[i].arrival, Seconds(1));
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
  }
  // ~240 arrivals/sec expected; allow generous Poisson slack.
  EXPECT_GT(a.size(), 150u);
  EXPECT_LT(a.size(), 350u);
  // A different seed is a different trace.
  const auto c = GenerateOpenLoopArrivals(Tenants(), Seconds(1), 8);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrival != c[i].arrival;
  }
  EXPECT_TRUE(differs);
}

TEST(LoadgenTest, RateScalesArrivalCount) {
  const auto low = GenerateOpenLoopArrivals(Tenants(0.5), Seconds(2), 7);
  const auto high = GenerateOpenLoopArrivals(Tenants(2.0), Seconds(2), 7);
  EXPECT_GT(high.size(), 2 * low.size());
}

TEST(WarmPoolTest, ParkAndTakeAreFifoPerApp) {
  WarmPool pool;
  pool.Park("a", {nullptr, {}, Millis(1)});
  pool.Park("a", {nullptr, {}, Millis(2)});
  pool.Park("b", {nullptr, {}, Millis(3)});
  EXPECT_EQ(pool.Size("a"), 2u);
  EXPECT_EQ(pool.Size("b"), 1u);

  auto first = pool.TryTake("a");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->launch_ns, Millis(1));
  auto second = pool.TryTake("a");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->launch_ns, Millis(2));
  EXPECT_FALSE(pool.TryTake("a").has_value());
  EXPECT_FALSE(pool.TryTake("missing").has_value());

  auto stats = pool.stats();
  EXPECT_EQ(stats.parked, 3u);
  EXPECT_EQ(stats.taken, 2u);
  EXPECT_EQ(stats.empty_takes, 2u);
  EXPECT_EQ(stats.live, 1u);
  EXPECT_EQ(stats.peak_live, 3u);
}

TEST(ServingTest, WarmHitsDominateAtSteadyStateAndRestoreStaysCheap) {
  core::SnapshotCache snapshots;
  ServeOptions options;
  options.tenants = Tenants();
  options.duration = Seconds(2);
  options.execute = false;
  auto result = RunServing(Cache(), snapshots, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(result->requests, 0u);
  EXPECT_GT(result->warm_hit_ratio, 0.5);
  EXPECT_EQ(result->requests,
            result->warm_hits + result->restores + result->cold_boots);
  // Launch economics, measured in the prelude: restore under half cold.
  for (const AppServeCost& cost : result->costs) {
    EXPECT_LT(cost.restore_ratio, 0.5) << cost.app;
    EXPECT_GT(cost.restore_ns, 0) << cost.app;
  }
  // The pool fills from cold boots: every app captures exactly once.
  EXPECT_EQ(result->captures, result->costs.size());
  // p50 is a warm dispatch + service, far below a cold boot.
  EXPECT_LT(result->ttfr_p50, result->costs.front().cold_ns);
  EXPECT_GE(result->ttfr_p99, result->ttfr_p50);
  EXPECT_GE(result->ttfr_max, result->ttfr_p99);
}

TEST(ServingTest, PrebakedSnapshotsRemoveTheColdStartEntirely) {
  core::SnapshotCache snapshots;
  ServeOptions options;
  options.tenants = Tenants();
  options.duration = Seconds(1);
  options.execute = false;
  options.prebake_snapshots = true;
  auto result = RunServing(Cache(), snapshots, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cold_boots, 0u);
  EXPECT_EQ(result->captures, 0u);
  EXPECT_GT(result->warm_hits, 0u);
  // Worst case is an on-demand restore, never a full boot.
  EXPECT_LT(result->ttfr_max,
            result->costs.front().cold_ns + result->queue_wait_p99 + Millis(10));
}

TEST(ServingTest, RecordsAndJournalAreByteIdenticalAcrossWorkerCounts) {
  auto run = [](size_t workers, std::string* journal_out) {
    telemetry::Journal journal;
    core::SnapshotCache snapshots;
    ServeOptions options;
    options.tenants = Tenants();
    options.duration = Seconds(1);
    options.workers = workers;
    options.execute = true;
    options.journal = &journal;
    auto result = RunServing(Cache(), snapshots, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    *journal_out = journal.ExportJsonl(false);
    return result.ok() ? result.take() : ServeResult{};
  };
  std::string base_journal;
  const ServeResult base = run(1, &base_journal);
  EXPECT_FALSE(base_journal.empty());
  for (size_t workers : {2u, 4u, 8u}) {
    std::string journal;
    const ServeResult other = run(workers, &journal);
    EXPECT_EQ(base_journal, journal) << workers << " workers";
    EXPECT_EQ(base.ttfr_p50, other.ttfr_p50) << workers << " workers";
    EXPECT_EQ(base.ttfr_p99, other.ttfr_p99) << workers << " workers";
    EXPECT_EQ(base.warm_hits, other.warm_hits) << workers << " workers";
    EXPECT_EQ(base.virtual_end, other.virtual_end) << workers << " workers";
    ASSERT_EQ(base.records.size(), other.records.size());
    for (size_t i = 0; i < base.records.size(); ++i) {
      EXPECT_EQ(base.records[i].ttfr, other.records[i].ttfr) << "request " << i;
      EXPECT_STREQ(base.records[i].path, other.records[i].path) << "request " << i;
    }
  }
}

TEST(ServingStormTest, HostExecutionMatchesThePlanWithoutDivergence) {
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    telemetry::MetricRegistry metrics;
    core::SnapshotCache snapshots;
    ServeOptions options;
    options.tenants = Tenants();
    options.duration = Seconds(1);
    options.workers = workers;
    options.execute = true;
    options.metrics = &metrics;
    auto result = RunServing(Cache(), snapshots, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // The dependency graph makes the plan executable: every warm take found
    // its parked guest, every restore found its snapshot.
    EXPECT_EQ(result->exec_divergence, 0u) << workers << " workers";
    EXPECT_EQ(result->exec_warm_takes, result->warm_hits) << workers << " workers";
    EXPECT_EQ(result->exec_restores, result->restores) << workers << " workers";
    EXPECT_EQ(result->exec_cold_boots, result->cold_boots) << workers << " workers";
    EXPECT_EQ(result->exec_captures, result->captures) << workers << " workers";
    EXPECT_EQ(metrics.GetCounter("serve.requests").value(), result->requests);
    EXPECT_EQ(metrics.GetCounter("warmpool.taken").value(), result->warm_hits);
  }
}

TEST(ServingStormTest, AdmissionBudgetDeniesWithoutBlockingTheFrontDoor) {
  core::SnapshotCache snapshots;
  ServeOptions options;
  options.tenants = Tenants();
  options.duration = Seconds(1);
  options.workers = 4;
  options.execute = true;
  options.host_budget = 2 * options.memory;  // Two concurrent guests, tops.
  auto result = RunServing(Cache(), snapshots, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // TryAdmit never blocks: denials are counted, every request still served.
  EXPECT_GT(result->exec_admission_denied, 0u);
  EXPECT_EQ(result->records.size(), result->requests);
}

TEST(ServingChaosTest, RestoreFaultsPoisonThenHalfOpenProbeRecovers) {
  FaultPlan plan;
  plan.Add({.site = FaultSite::kSnapshotRestore,
            .trigger_on = 1,
            .period = 1,
            .max_fires = 4,
            .app = "redis"});
  core::SnapshotCache snapshots;
  ServeOptions options;
  options.tenants = Tenants();
  options.duration = Seconds(2);
  options.execute = false;
  options.fault_plan = &plan;
  options.quarantine.poison_ttl = Millis(120);
  auto result = RunServing(Cache(), snapshots, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The schedule walks the whole state machine: failures, a drop +
  // recapture, a poison, TTL denials, then the half-open probe readmits.
  EXPECT_EQ(result->restore_failures, 4u);
  EXPECT_GE(result->quarantine_drops, 1u);
  EXPECT_GE(result->quarantine_poisoned, 1u);
  EXPECT_GE(result->probes, 1u);
  // Recovery: redis serves off its snapshot path again after the last fault.
  Nanos last_failure = -1;
  for (const RequestRecord& rec : result->records) {
    if (std::string(rec.path) == "restore-fail-cold") {
      last_failure = std::max(last_failure, rec.dispatch);
    }
  }
  bool recovered = false;
  for (const RequestRecord& rec : result->records) {
    if (rec.app == "redis" && rec.dispatch > last_failure &&
        (std::string(rec.path) == "warm" || std::string(rec.path) == "restore")) {
      recovered = true;
      break;
    }
  }
  EXPECT_TRUE(recovered);
  // Unstruck tenants never noticed.
  for (const RequestRecord& rec : result->records) {
    if (rec.app != "redis") {
      EXPECT_STRNE(rec.path, "restore-fail-cold");
    }
  }
}

TEST(ServingTest, EmptyTenantListIsInvalid) {
  core::SnapshotCache snapshots;
  ServeOptions options;
  auto result = RunServing(Cache(), snapshots, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().err(), Err::kInval);
}

}  // namespace
}  // namespace lupine::serve

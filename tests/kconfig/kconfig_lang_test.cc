#include "src/kconfig/kconfig_lang.h"

#include <gtest/gtest.h>

#include "src/kconfig/resolver.h"

namespace lupine::kconfig {
namespace {

constexpr char kSample[] = R"(# Futex support
config FUTEX
	bool "Fast user-space mutexes"
	depends on MMU
	select RT_MUTEXES
	help
	  Enables the futex system call used by
	  modern pthread implementations.

config MMU
	bool

config RT_MUTEXES
	bool
)";

TEST(KconfigLangTest, ParsesConfigBlocks) {
  OptionDb db;
  auto added = ParseKconfig(kSample, {}, db);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value(), 3u);

  const OptionInfo* futex = db.Find("FUTEX");
  ASSERT_NE(futex, nullptr);
  EXPECT_EQ(futex->type, OptionType::kBool);
  ASSERT_EQ(futex->depends_on.size(), 1u);
  EXPECT_EQ(futex->depends_on[0], "MMU");
  ASSERT_EQ(futex->selects.size(), 1u);
  EXPECT_EQ(futex->selects[0], "RT_MUTEXES");
  EXPECT_NE(futex->help.find("futex system call"), std::string::npos);
}

TEST(KconfigLangTest, ParsedTreeWorksWithTheResolver) {
  OptionDb db;
  ASSERT_TRUE(ParseKconfig(kSample, {}, db).ok());
  Resolver resolver(db);
  Config config;
  ASSERT_TRUE(resolver.Enable(config, "FUTEX").ok());
  EXPECT_TRUE(config.IsEnabled("MMU"));        // depends on
  EXPECT_TRUE(config.IsEnabled("RT_MUTEXES")); // select
  EXPECT_TRUE(resolver.Validate(config).ok());
}

TEST(KconfigLangTest, ConjunctiveDependsOn) {
  OptionDb db;
  auto added = ParseKconfig(
      "config A\n\tbool\nconfig B\n\tbool\nconfig C\n\tbool\n\tdepends on A && B\n", {}, db);
  ASSERT_TRUE(added.ok());
  const OptionInfo* c = db.Find("C");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->depends_on, (std::vector<std::string>{"A", "B"}));
}

TEST(KconfigLangTest, ConflictsExtension) {
  OptionDb db;
  auto added =
      ParseKconfig("config KML\n\tbool\n\tconflicts PARAVIRT\nconfig PARAVIRT\n\tbool\n", {}, db);
  ASSERT_TRUE(added.ok());
  ASSERT_EQ(db.Find("KML")->conflicts.size(), 1u);
  EXPECT_EQ(db.Find("KML")->conflicts[0], "PARAVIRT");
}

TEST(KconfigLangTest, TristateAndPromptTypes) {
  OptionDb db;
  ASSERT_TRUE(ParseKconfig("config IPV6\n\ttristate \"The IPv6 protocol\"\n", {}, db).ok());
  EXPECT_EQ(db.Find("IPV6")->type, OptionType::kTristate);
  EXPECT_EQ(db.Find("IPV6")->help, "The IPv6 protocol");
}

TEST(KconfigLangTest, ErrorsCarryLineNumbers) {
  OptionDb db;
  auto bad = ParseKconfig("config OK\n\tbool\nconfig lower_case\n", {}, db);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("Kconfig:3"), std::string::npos);
}

TEST(KconfigLangTest, DisjunctionRejected) {
  OptionDb db;
  auto bad = ParseKconfig("config X\n\tbool\n\tdepends on A || B\n", {}, db);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("conjunctive"), std::string::npos);
}

TEST(KconfigLangTest, UnsupportedConstructsRejectedExplicitly) {
  OptionDb db;
  auto bad = ParseKconfig("menu \"Networking\"\n", {}, db);
  ASSERT_FALSE(bad.ok());
  // 'menu' hits the outside-config-block check first; either message names
  // the construct.
  EXPECT_NE(bad.status().message().find("menu"), std::string::npos);
}

TEST(KconfigLangTest, DuplicateConfigRejected) {
  OptionDb db;
  auto bad = ParseKconfig("config X\n\tbool\nconfig X\n\tbool\n", {}, db);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.err(), Err::kExist);
}

TEST(KconfigLangTest, RoundTripThroughToKconfig) {
  OptionDb db;
  ASSERT_TRUE(ParseKconfig(kSample, {}, db).ok());
  std::string rendered = ToKconfig(*db.Find("FUTEX"));
  OptionDb db2;
  // Re-parse just the FUTEX block.
  auto added = ParseKconfig(rendered, {}, db2);
  ASSERT_TRUE(added.ok()) << added.status().ToString() << "\n" << rendered;
  EXPECT_EQ(db2.Find("FUTEX")->depends_on, db.Find("FUTEX")->depends_on);
  EXPECT_EQ(db2.Find("FUTEX")->selects, db.Find("FUTEX")->selects);
}

TEST(KconfigLangTest, ParseOptionsAssignTaxonomy) {
  OptionDb db;
  KconfigParseOptions options;
  options.dir = SourceDir::kNet;
  options.option_class = OptionClass::kAppNetwork;
  options.default_size = 64 * kKiB;
  ASSERT_TRUE(ParseKconfig("config SCTP\n\tbool\n", options, db).ok());
  EXPECT_EQ(db.Find("SCTP")->dir, SourceDir::kNet);
  EXPECT_EQ(db.Find("SCTP")->option_class, OptionClass::kAppNetwork);
  EXPECT_EQ(db.Find("SCTP")->builtin_size, 64 * kKiB);
}

}  // namespace
}  // namespace lupine::kconfig

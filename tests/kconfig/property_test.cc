// Property tests over the configuration engine with PRNG-sampled inputs.
#include <gtest/gtest.h>

#include "src/kconfig/dotconfig.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/util/prng.h"

namespace lupine::kconfig {
namespace {

// Samples `count` random option names from the tree.
std::vector<std::string> SampleOptions(Prng& rng, size_t count) {
  const auto& all = OptionDb::Linux40().options();
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(all[rng.NextBelow(all.size())].name);
  }
  return out;
}

class ResolverProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResolverProperty, EnableClosureAlwaysValidates) {
  Prng rng(GetParam());
  Resolver resolver(OptionDb::Linux40());
  Config config;
  config.set_kml_patch_applied(true);
  for (const auto& option : SampleOptions(rng, 40)) {
    // Enabling may fail on conflicts; the config must stay valid either way.
    auto result = resolver.Enable(config, option);
    (void)result;
    EXPECT_TRUE(resolver.Validate(config).ok()) << "after enabling " << option;
  }
}

TEST_P(ResolverProperty, EnableIsIdempotent) {
  Prng rng(GetParam() ^ 0xABCD);
  Resolver resolver(OptionDb::Linux40());
  Config config;
  auto options = SampleOptions(rng, 20);
  for (const auto& option : options) {
    (void)resolver.Enable(config, option);
  }
  size_t count = config.EnabledCount();
  for (const auto& option : options) {
    (void)resolver.Enable(config, option);
  }
  EXPECT_EQ(config.EnabledCount(), count);
}

TEST_P(ResolverProperty, DotConfigRoundTripsRandomConfigs) {
  Prng rng(GetParam() ^ 0x5EED);
  Resolver resolver(OptionDb::Linux40());
  Config config;
  for (const auto& option : SampleOptions(rng, 60)) {
    (void)resolver.Enable(config, option);
  }
  auto parsed = ParseDotConfig(ToDotConfig(config));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == config);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResolverProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(ConfigProperty, UnionIsCommutativeOnEnabledSets) {
  Prng rng(99);
  Resolver resolver(OptionDb::Linux40());
  Config a;
  Config b;
  for (const auto& option : SampleOptions(rng, 30)) {
    (void)resolver.Enable(a, option);
  }
  for (const auto& option : SampleOptions(rng, 30)) {
    (void)resolver.Enable(b, option);
  }
  Config ab = a;
  ab.UnionWith(b);
  Config ba = b;
  ba.UnionWith(a);
  EXPECT_TRUE(ab == ba);
}

TEST(ConfigProperty, MinusAndUnionAreConsistent) {
  Config microvm = MicrovmConfig();
  Config base = LupineBase();
  auto removed = microvm.Minus(base);
  Config rebuilt = base;
  for (const auto& option : removed) {
    rebuilt.Enable(option);
  }
  EXPECT_TRUE(rebuilt == microvm);
}

}  // namespace
}  // namespace lupine::kconfig

#include "src/kconfig/presets.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/kconfig/option_names.h"
#include "src/kconfig/resolver.h"

namespace lupine::kconfig {
namespace {

namespace n = names;

TEST(PresetsTest, MicrovmHas833Options) {
  EXPECT_EQ(MicrovmConfig().EnabledCount(), 833u);
}

TEST(PresetsTest, LupineBaseHas283Options) {
  // 283 = 34% of microVM's 833 (Section 3.1).
  EXPECT_EQ(LupineBase().EnabledCount(), 283u);
}

TEST(PresetsTest, LupineBaseIsSubsetOfMicrovm) {
  Config microvm = MicrovmConfig();
  Config base = LupineBase();
  for (const auto& option : base.EnabledOptions()) {
    EXPECT_TRUE(microvm.IsEnabled(option)) << option;
  }
  EXPECT_EQ(microvm.Minus(base).size(), 550u);  // The removed options.
}

TEST(PresetsTest, BothValidateAgainstTheTree) {
  Resolver resolver(OptionDb::Linux40());
  EXPECT_TRUE(resolver.Validate(MicrovmConfig()).ok());
  EXPECT_TRUE(resolver.Validate(LupineBase()).ok());
}

// Table 3: exact per-app option counts.
TEST(PresetsTest, Table3AppOptionCounts) {
  const std::map<std::string, size_t> expected = {
      {"nginx", 13},    {"postgres", 10},    {"httpd", 13},     {"node", 5},
      {"redis", 10},    {"mongo", 11},       {"mysql", 9},      {"traefik", 8},
      {"memcached", 10}, {"hello-world", 0}, {"mariadb", 13},   {"golang", 0},
      {"python", 0},    {"openjdk", 0},      {"rabbitmq", 12},  {"php", 0},
      {"wordpress", 9}, {"haproxy", 8},      {"influxdb", 11},  {"elasticsearch", 12},
  };
  for (const auto& [app, count] : expected) {
    EXPECT_EQ(AppExtraOptions(app).size(), count) << app;
  }
}

TEST(PresetsTest, UnionOfAppOptionsIs19) {
  // "a kernel with only 19 configuration options added on top of the
  // lupine-base configuration is sufficient to run all 20 of the most
  // popular applications" (Section 4.1).
  std::set<std::string> all;
  for (const auto& app : Top20AppNames()) {
    for (const auto& option : AppExtraOptions(app)) {
      all.insert(option);
    }
  }
  EXPECT_EQ(all.size(), 19u);
}

TEST(PresetsTest, LupineGeneralIsBasePlus19) {
  EXPECT_EQ(LupineGeneral().EnabledCount(), 283u + 19u);
}

TEST(PresetsTest, AppOptionsAreApplicationSpecificOrIpc) {
  // Every Table 3 option was removed from microVM (and thus re-addable).
  const auto& db = OptionDb::Linux40();
  for (const auto& app : Top20AppNames()) {
    for (const auto& option : AppExtraOptions(app)) {
      const OptionInfo* info = db.Find(option);
      ASSERT_NE(info, nullptr) << option;
      EXPECT_TRUE(IsRemovedFromMicrovm(info->option_class)) << option;
    }
  }
}

TEST(PresetsTest, PostgresNeedsMultiProcessSysvipc) {
  // The paper calls out postgres requiring CONFIG_SYSVIPC, an option
  // classified as multi-process (Section 4.1).
  const auto& options = AppExtraOptions("postgres");
  bool has_sysvipc = false;
  for (const auto& o : options) {
    has_sysvipc |= o == n::kSysvipc;
  }
  EXPECT_TRUE(has_sysvipc);
  EXPECT_EQ(OptionDb::Linux40().Find(n::kSysvipc)->option_class, OptionClass::kMultiProcess);
}

TEST(PresetsTest, RedisNeedsEpollAndFutexButNotAio) {
  // Section 3.1.1's example: redis requires EPOLL and FUTEX; nginx
  // additionally requires AIO and EVENTFD.
  auto redis = AppExtraOptions("redis");
  auto has = [](const std::vector<std::string>& v, const char* o) {
    for (const auto& e : v) {
      if (e == o) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has(redis, n::kEpoll));
  EXPECT_TRUE(has(redis, n::kFutex));
  EXPECT_FALSE(has(redis, n::kAio));
  EXPECT_FALSE(has(redis, n::kEventfd));

  auto nginx = AppExtraOptions("nginx");
  EXPECT_TRUE(has(nginx, n::kAio));
  EXPECT_TRUE(has(nginx, n::kEventfd));
}

TEST(PresetsTest, TinyDisablesNineOptions) {
  EXPECT_EQ(TinyDisabledOptions().size(), 9u);
  Config config = LupineBase();
  size_t before = config.EnabledCount();
  ApplyTiny(config);
  EXPECT_EQ(config.EnabledCount(), before - 9);
  EXPECT_EQ(config.compile_mode(), CompileMode::kOs);
  EXPECT_FALSE(config.IsEnabled(n::kBaseFull));
}

TEST(PresetsTest, ApplyKmlSwapsParavirt) {
  Config config = LupineBase();
  ASSERT_TRUE(config.IsEnabled(n::kParavirt));
  ASSERT_TRUE(ApplyKml(config).ok());
  EXPECT_TRUE(config.IsEnabled(n::kKml));
  EXPECT_FALSE(config.IsEnabled(n::kParavirt));
  Resolver resolver(OptionDb::Linux40());
  EXPECT_TRUE(resolver.Validate(config).ok());
}

TEST(PresetsTest, KmlWithoutPatchFails) {
  Config config = LupineBase();
  config.Disable(n::kParavirt);
  Resolver resolver(OptionDb::Linux40());
  auto result = resolver.Enable(config, n::kKml);
  EXPECT_FALSE(result.ok());  // Patch not applied.
}

TEST(PresetsTest, LupineForAppResolvesDependencies) {
  auto config = LupineForApp("nginx");
  ASSERT_TRUE(config.ok());
  // IPV6 pulled in; INET/NET were already in base.
  EXPECT_TRUE(config->IsEnabled(n::kIpv6));
  EXPECT_TRUE(config->IsEnabled(n::kInet));
  Resolver resolver(OptionDb::Linux40());
  EXPECT_TRUE(resolver.Validate(config.value()).ok());
}

TEST(PresetsTest, Top20ListMatchesPaperOrder) {
  const auto& apps = Top20AppNames();
  ASSERT_EQ(apps.size(), 20u);
  EXPECT_EQ(apps.front(), "nginx");
  EXPECT_EQ(apps[1], "postgres");
  EXPECT_EQ(apps.back(), "elasticsearch");
}

}  // namespace
}  // namespace lupine::kconfig

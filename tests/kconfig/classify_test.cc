#include "src/kconfig/classify.h"

#include <gtest/gtest.h>

#include "src/kconfig/presets.h"

namespace lupine::kconfig {
namespace {

TEST(ClassifyTest, RemovalBreakdownMatchesPaper) {
  RemovalBreakdown b = ClassifyRemovals(OptionDb::Linux40());
  EXPECT_EQ(b.microvm_total, 833u);
  EXPECT_EQ(b.base_retained, 283u);
  EXPECT_EQ(b.removed_total(), 550u);
  EXPECT_EQ(b.app_specific_total(), 311u);
  EXPECT_EQ(b.multi_process, 89u);
  EXPECT_EQ(b.hardware, 150u);
}

TEST(ClassifyTest, TreeTotalsSumTo15953) {
  auto totals = TreeTotalsByDir(OptionDb::Linux40());
  size_t sum = 0;
  for (size_t c : totals) {
    sum += c;
  }
  EXPECT_EQ(sum, 15953u);
}

TEST(ClassifyTest, CountByDirSumsToConfigSize) {
  Config microvm = MicrovmConfig();
  auto counts = CountByDir(microvm, OptionDb::Linux40());
  size_t sum = 0;
  for (size_t c : counts) {
    sum += c;
  }
  EXPECT_EQ(sum, microvm.EnabledCount());
}

TEST(ClassifyTest, MicrovmHasNoSoundOrSamplesOptions) {
  Config microvm = MicrovmConfig();
  auto counts = CountByDir(microvm, OptionDb::Linux40());
  EXPECT_EQ(counts[static_cast<int>(SourceDir::kSound)], 0u);
  EXPECT_EQ(counts[static_cast<int>(SourceDir::kSamples)], 0u);
}

TEST(ClassifyTest, LupineBaseSmallerThanMicrovmInEveryDir) {
  auto microvm = CountByDir(MicrovmConfig(), OptionDb::Linux40());
  auto base = CountByDir(LupineBase(), OptionDb::Linux40());
  for (int d = 0; d < kNumSourceDirs; ++d) {
    EXPECT_LE(base[d], microvm[d]) << SourceDirName(static_cast<SourceDir>(d));
  }
}

}  // namespace
}  // namespace lupine::kconfig

#include "src/kconfig/dotconfig.h"

#include <gtest/gtest.h>

#include "src/kconfig/presets.h"

namespace lupine::kconfig {
namespace {

TEST(DotConfigTest, SerializesBoolAndValuedOptions) {
  Config c("demo");
  c.Enable("FUTEX");
  c.SetValue("NR_CPUS", "4");
  c.SetValue("CMDLINE", "console=ttyS0");
  std::string text = ToDotConfig(c);
  EXPECT_NE(text.find("CONFIG_FUTEX=y"), std::string::npos);
  EXPECT_NE(text.find("CONFIG_NR_CPUS=4"), std::string::npos);
  EXPECT_NE(text.find("CONFIG_CMDLINE=\"console=ttyS0\""), std::string::npos);
}

TEST(DotConfigTest, RoundTrips) {
  Config c("demo");
  c.Enable("FUTEX");
  c.Enable("EPOLL");
  c.SetValue("NR_CPUS", "2");
  auto parsed = ParseDotConfig(ToDotConfig(c));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == c);
}

TEST(DotConfigTest, ParsesNotSetCommentsAsAbsent) {
  auto parsed = ParseDotConfig(
      "# CONFIG_SMP is not set\n"
      "CONFIG_FUTEX=y\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->IsEnabled("FUTEX"));
  EXPECT_FALSE(parsed->IsEnabled("SMP"));
}

TEST(DotConfigTest, ExplicitNoIsAbsent) {
  auto parsed = ParseDotConfig("CONFIG_SMP=n\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->IsEnabled("SMP"));
}

TEST(DotConfigTest, MalformedLineFails) {
  auto parsed = ParseDotConfig("FUTEX=y\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.err(), Err::kInval);
}

TEST(DotConfigTest, QuotedStringsUnquoted) {
  auto parsed = ParseDotConfig("CONFIG_CMDLINE=\"quiet panic=1\"\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetValue("CMDLINE"), "quiet panic=1");
}

TEST(DotConfigTest, MicrovmRoundTripsThroughText) {
  Config microvm = MicrovmConfig();
  auto parsed = ParseDotConfig(ToDotConfig(microvm));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->EnabledCount(), microvm.EnabledCount());
}

TEST(DotConfigTest, NotSetAnnotationsIncludeRemovedOptions) {
  Config base = LupineBase();
  std::string text = ToDotConfig(base, &OptionDb::Linux40());
  // SMP is in the microVM universe but disabled in lupine-base.
  EXPECT_NE(text.find("# CONFIG_SMP is not set"), std::string::npos);
}

}  // namespace
}  // namespace lupine::kconfig

#include <gtest/gtest.h>

#include "src/kconfig/option_db.h"
#include "src/kconfig/option_names.h"

namespace lupine::kconfig {
namespace {

namespace n = names;

TEST(LinuxDbTest, TreeHas15953Options) {
  // The paper's count for Linux 4.0 (Section 3.1).
  EXPECT_EQ(OptionDb::Linux40().size(), 15953u);
}

TEST(LinuxDbTest, DriversIsTheLargestDirectory) {
  const auto& db = OptionDb::Linux40();
  size_t drivers = db.CountInDir(SourceDir::kDrivers);
  for (int d = 0; d < kNumSourceDirs; ++d) {
    auto dir = static_cast<SourceDir>(d);
    if (dir != SourceDir::kDrivers) {
      EXPECT_LT(db.CountInDir(dir), drivers) << SourceDirName(dir);
    }
  }
  // "Almost half of the configuration options are found in drivers."
  EXPECT_GT(drivers, OptionDb::Linux40().size() * 2 / 5);
}

TEST(LinuxDbTest, Fig4ClassCounts) {
  const auto& db = OptionDb::Linux40();
  EXPECT_EQ(db.CountInClass(OptionClass::kBase), 283u);
  EXPECT_EQ(db.CountInClass(OptionClass::kMultiProcess), 89u);
  EXPECT_EQ(db.CountInClass(OptionClass::kHardware), 150u);
  size_t app_specific = db.CountInClass(OptionClass::kAppNetwork) +
                        db.CountInClass(OptionClass::kAppFilesystem) +
                        db.CountInClass(OptionClass::kAppSyscall) +
                        db.CountInClass(OptionClass::kAppCompression) +
                        db.CountInClass(OptionClass::kAppCrypto) +
                        db.CountInClass(OptionClass::kAppDebug) +
                        db.CountInClass(OptionClass::kAppOther);
  EXPECT_EQ(app_specific, 311u);
}

TEST(LinuxDbTest, AppSpecificSubcategoryCounts) {
  const auto& db = OptionDb::Linux40();
  EXPECT_EQ(db.CountInClass(OptionClass::kAppNetwork), 100u);
  EXPECT_EQ(db.CountInClass(OptionClass::kAppFilesystem), 35u);
  EXPECT_EQ(db.CountInClass(OptionClass::kAppSyscall), 12u);  // Table 1.
  EXPECT_EQ(db.CountInClass(OptionClass::kAppCompression), 20u);
  EXPECT_EQ(db.CountInClass(OptionClass::kAppCrypto), 55u);
  EXPECT_EQ(db.CountInClass(OptionClass::kAppDebug), 65u);
}

TEST(LinuxDbTest, NamedOptionsExistWithSaneAttributes) {
  const auto& db = OptionDb::Linux40();
  const OptionInfo* futex = db.Find(n::kFutex);
  ASSERT_NE(futex, nullptr);
  EXPECT_EQ(futex->option_class, OptionClass::kAppSyscall);
  EXPECT_GT(futex->builtin_size, 0u);

  const OptionInfo* smp = db.Find(n::kSmp);
  ASSERT_NE(smp, nullptr);
  EXPECT_EQ(smp->option_class, OptionClass::kMultiProcess);

  const OptionInfo* ipv6 = db.Find(n::kIpv6);
  ASSERT_NE(ipv6, nullptr);
  EXPECT_EQ(ipv6->dir, SourceDir::kNet);
  ASSERT_FALSE(ipv6->depends_on.empty());
  EXPECT_EQ(ipv6->depends_on[0], n::kInet);
}

TEST(LinuxDbTest, KmlConflictsWithParavirt) {
  const auto& db = OptionDb::Linux40();
  const OptionInfo* kml = db.Find(n::kKml);
  ASSERT_NE(kml, nullptr);
  EXPECT_EQ(kml->option_class, OptionClass::kNotSelected);
  bool conflicts_paravirt = false;
  for (const auto& c : kml->conflicts) {
    conflicts_paravirt |= c == n::kParavirt;
  }
  EXPECT_TRUE(conflicts_paravirt);
}

TEST(LinuxDbTest, DuplicateNamesRejected) {
  OptionDb db;
  OptionInfo a;
  a.name = "X";
  EXPECT_TRUE(db.Add(a));
  EXPECT_FALSE(db.Add(a));
  EXPECT_EQ(db.size(), 1u);
}

TEST(LinuxDbTest, AllInClassAndDirAreConsistent) {
  const auto& db = OptionDb::Linux40();
  EXPECT_EQ(db.AllInClass(OptionClass::kBase).size(), db.CountInClass(OptionClass::kBase));
  EXPECT_EQ(db.AllInDir(SourceDir::kVirt).size(), db.CountInDir(SourceDir::kVirt));
}

}  // namespace
}  // namespace lupine::kconfig

#include "src/kconfig/config.h"

#include <gtest/gtest.h>

namespace lupine::kconfig {
namespace {

TEST(ConfigTest, EnableDisable) {
  Config c("test");
  EXPECT_FALSE(c.IsEnabled("FUTEX"));
  c.Enable("FUTEX");
  EXPECT_TRUE(c.IsEnabled("FUTEX"));
  EXPECT_EQ(c.EnabledCount(), 1u);
  c.Disable("FUTEX");
  EXPECT_FALSE(c.IsEnabled("FUTEX"));
  EXPECT_EQ(c.EnabledCount(), 0u);
}

TEST(ConfigTest, ValuedOptions) {
  Config c;
  c.SetValue("NR_CPUS", "1");
  EXPECT_TRUE(c.IsEnabled("NR_CPUS"));
  EXPECT_EQ(c.GetValue("NR_CPUS"), "1");
  EXPECT_EQ(c.GetValue("MISSING"), "");
}

TEST(ConfigTest, MinusComputesDifference) {
  Config a;
  a.Enable("X");
  a.Enable("Y");
  Config b;
  b.Enable("Y");
  auto diff = a.Minus(b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], "X");
  EXPECT_TRUE(b.Minus(a).empty());
}

TEST(ConfigTest, UnionWith) {
  Config a;
  a.Enable("X");
  Config b;
  b.Enable("Y");
  a.UnionWith(b);
  EXPECT_TRUE(a.IsEnabled("X"));
  EXPECT_TRUE(a.IsEnabled("Y"));
  EXPECT_EQ(a.EnabledCount(), 2u);
}

TEST(ConfigTest, EnabledOptionsSortedAndComplete) {
  Config c;
  c.Enable("B");
  c.Enable("A");
  auto options = c.EnabledOptions();
  ASSERT_EQ(options.size(), 2u);
  EXPECT_EQ(options[0], "A");  // std::map ordering.
  EXPECT_EQ(options[1], "B");
}

TEST(ConfigTest, EqualityIgnoresName) {
  Config a("one");
  Config b("two");
  a.Enable("X");
  b.Enable("X");
  EXPECT_TRUE(a == b);
}

TEST(ConfigTest, ValueGenerationTracksSideTableMutations) {
  // Every mutator that can invalidate a GetValue/ValueOfId view bumps the
  // generation; reads never do.
  Config c;
  const uint64_t start = c.value_generation();
  c.SetValue("NR_CPUS", "4");
  EXPECT_GT(c.value_generation(), start);

  const uint64_t after_set = c.value_generation();
  (void)c.GetValue("NR_CPUS");
  (void)c.IsEnabled("NR_CPUS");
  EXPECT_EQ(c.value_generation(), after_set);

  c.Disable("NR_CPUS");
  EXPECT_GT(c.value_generation(), after_set);

  const uint64_t after_disable = c.value_generation();
  Config other;
  other.SetValue("PANIC_TIMEOUT", "-1");
  c.UnionWith(other);
  EXPECT_GT(c.value_generation(), after_disable);
}

TEST(ConfigTest, ValueViewGuardDetectsMutationUnderALiveView) {
  Config c;
  c.SetValue("NR_CPUS", "4");
  std::string_view view = c.GetValue("NR_CPUS");
  ValueViewGuard guard(c);
  EXPECT_TRUE(guard.Check());
  EXPECT_EQ(view, "4");

  // The copy-before-mutate discipline (see GetValue's lifetime note): take
  // the value, then mutate. The guard flags the stale view.
  std::string copy(view);
  c.SetValue("NR_CPUS", "8");
  EXPECT_FALSE(guard.Check());
  EXPECT_EQ(copy, "4");  // The copy is unaffected.
}

TEST(ConfigTest, IsSubsetOfComparesOptionsValuesAndKnobs) {
  Config small;
  small.Enable("FUTEX");
  small.SetValue("NR_CPUS", "1");
  Config big = small;
  big.Enable("EPOLL");
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));

  // A clashing value breaks the subset even when the option set is covered.
  Config clash = big;
  clash.SetValue("NR_CPUS", "4");
  EXPECT_FALSE(small.IsSubsetOf(clash));

  // Build knobs must match: a -tiny or KML-patched kernel is not a superset
  // of a plain one.
  Config tiny = big;
  tiny.set_compile_mode(CompileMode::kOs);
  EXPECT_FALSE(small.IsSubsetOf(tiny));
  Config kml = big;
  kml.set_kml_patch_applied(true);
  EXPECT_FALSE(small.IsSubsetOf(kml));
}

}  // namespace
}  // namespace lupine::kconfig

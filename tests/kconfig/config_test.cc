#include "src/kconfig/config.h"

#include <gtest/gtest.h>

namespace lupine::kconfig {
namespace {

TEST(ConfigTest, EnableDisable) {
  Config c("test");
  EXPECT_FALSE(c.IsEnabled("FUTEX"));
  c.Enable("FUTEX");
  EXPECT_TRUE(c.IsEnabled("FUTEX"));
  EXPECT_EQ(c.EnabledCount(), 1u);
  c.Disable("FUTEX");
  EXPECT_FALSE(c.IsEnabled("FUTEX"));
  EXPECT_EQ(c.EnabledCount(), 0u);
}

TEST(ConfigTest, ValuedOptions) {
  Config c;
  c.SetValue("NR_CPUS", "1");
  EXPECT_TRUE(c.IsEnabled("NR_CPUS"));
  EXPECT_EQ(c.GetValue("NR_CPUS"), "1");
  EXPECT_EQ(c.GetValue("MISSING"), "");
}

TEST(ConfigTest, MinusComputesDifference) {
  Config a;
  a.Enable("X");
  a.Enable("Y");
  Config b;
  b.Enable("Y");
  auto diff = a.Minus(b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], "X");
  EXPECT_TRUE(b.Minus(a).empty());
}

TEST(ConfigTest, UnionWith) {
  Config a;
  a.Enable("X");
  Config b;
  b.Enable("Y");
  a.UnionWith(b);
  EXPECT_TRUE(a.IsEnabled("X"));
  EXPECT_TRUE(a.IsEnabled("Y"));
  EXPECT_EQ(a.EnabledCount(), 2u);
}

TEST(ConfigTest, EnabledOptionsSortedAndComplete) {
  Config c;
  c.Enable("B");
  c.Enable("A");
  auto options = c.EnabledOptions();
  ASSERT_EQ(options.size(), 2u);
  EXPECT_EQ(options[0], "A");  // std::map ordering.
  EXPECT_EQ(options[1], "B");
}

TEST(ConfigTest, EqualityIgnoresName) {
  Config a("one");
  Config b("two");
  a.Enable("X");
  b.Enable("X");
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace lupine::kconfig

// Closure memoization must be invisible: the memoized replay path and the
// reference BFS walk (memoization off) produce byte-identical reports,
// configs, fingerprints and error statuses on every input the fleet pipeline
// exercises.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/multik.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"

namespace lupine::kconfig {
namespace {

// RAII: force the global memoization flag for one scope.
class MemoizationGuard {
 public:
  explicit MemoizationGuard(bool enabled) : prev_(Resolver::MemoizationEnabled()) {
    Resolver::SetMemoizationEnabled(enabled);
  }
  ~MemoizationGuard() { Resolver::SetMemoizationEnabled(prev_); }

 private:
  bool prev_;
};

struct Outcome {
  bool ok = false;
  Err err = Err::kOk;
  std::string message;
  std::vector<std::string> auto_enabled;
  Config config;
};

Outcome EnableAll(const Config& base, const std::vector<std::string>& options, bool memoize) {
  Outcome outcome;
  outcome.config = base;
  Resolver resolver(OptionDb::Linux40(), memoize);
  for (const auto& option : options) {
    auto report = resolver.Enable(outcome.config, option);
    if (!report.ok()) {
      outcome.err = report.status().err();
      outcome.message = report.status().message();
      return outcome;
    }
    outcome.auto_enabled.insert(outcome.auto_enabled.end(), report->auto_enabled.begin(),
                                report->auto_enabled.end());
  }
  outcome.ok = true;
  return outcome;
}

void ExpectIdentical(const Config& base, const std::vector<std::string>& options) {
  Outcome memoized = EnableAll(base, options, /*memoize=*/true);
  Outcome walked = EnableAll(base, options, /*memoize=*/false);
  EXPECT_EQ(memoized.ok, walked.ok);
  EXPECT_EQ(memoized.err, walked.err);
  EXPECT_EQ(memoized.message, walked.message);
  EXPECT_EQ(memoized.auto_enabled, walked.auto_enabled);
  EXPECT_TRUE(memoized.config == walked.config);
  EXPECT_EQ(memoized.config.EnabledOptions(), walked.config.EnabledOptions());
  EXPECT_EQ(core::KernelCache::ConfigFingerprint(memoized.config),
            core::KernelCache::ConfigFingerprint(walked.config));
}

TEST(ResolverMemoTest, Top20AppOptionsResolveIdentically) {
  for (const auto& app : Top20AppNames()) {
    SCOPED_TRACE(app);
    ExpectIdentical(LupineBase(), AppExtraOptions(app));
  }
}

TEST(ResolverMemoTest, HighFanoutOptionsFromEmptyConfig) {
  // From an empty config nothing is pre-enabled, so the memoized replay path
  // (rather than the pruned-walk fallback) is exercised end to end.
  for (const std::string option : {names::kIpv6, names::kSelinux, names::kCpusets,
                                   names::kVirtioNet, names::kNetNs}) {
    SCOPED_TRACE(option);
    ExpectIdentical(Config(), {option});
  }
}

TEST(ResolverMemoTest, LupineGeneralUnionResolvesIdentically) {
  // The union of every app's options atop lupine-base — the lupine-general
  // construction path, where later options are partially pre-enabled by
  // earlier ones (the pruned-walk fallback).
  std::vector<std::string> all;
  for (const auto& app : Top20AppNames()) {
    const auto& extra = AppExtraOptions(app);
    all.insert(all.end(), extra.begin(), extra.end());
  }
  ExpectIdentical(LupineBase(), all);
}

TEST(ResolverMemoTest, ErrorStatusesMatchByteForByte) {
  // Unknown option.
  ExpectIdentical(LupineBase(), {"NO_SUCH_OPTION"});
  // KML without the patch applied.
  ExpectIdentical(LupineBase(), {names::kKml});
  // KML conflict with PARAVIRT on a patched tree.
  Config patched = LupineBase();
  patched.set_kml_patch_applied(true);
  ASSERT_TRUE(patched.IsEnabled(names::kParavirt));
  ExpectIdentical(patched, {names::kKml});
}

TEST(ResolverMemoTest, WarmCacheRepeatsAreStable) {
  MemoizationGuard guard(true);
  Resolver resolver(OptionDb::Linux40());
  Config first = LupineBase();
  auto first_report = resolver.Enable(first, "IPV6");
  ASSERT_TRUE(first_report.ok());
  for (int i = 0; i < 3; ++i) {
    Config repeat = LupineBase();
    auto report = resolver.Enable(repeat, "IPV6");
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->auto_enabled, first_report->auto_enabled);
    EXPECT_TRUE(repeat == first);
  }
}

TEST(ResolverMemoTest, GlobalKillSwitchDisablesReplay) {
  // Flipping the global flag must not change results, only the path taken.
  Config with_memo = LupineBase();
  Config without_memo = LupineBase();
  {
    MemoizationGuard guard(true);
    Resolver resolver(OptionDb::Linux40());
    ASSERT_TRUE(resolver.Enable(with_memo, "IPV6").ok());
  }
  {
    MemoizationGuard guard(false);
    Resolver resolver(OptionDb::Linux40());
    ASSERT_TRUE(resolver.Enable(without_memo, "IPV6").ok());
  }
  EXPECT_TRUE(with_memo == without_memo);
}

}  // namespace
}  // namespace lupine::kconfig

#include "src/kconfig/resolver.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"

namespace lupine::kconfig {
namespace {

namespace n = names;

TEST(ResolverTest, EnablesTransitiveDependencies) {
  Config c;
  Resolver resolver(OptionDb::Linux40());
  auto result = resolver.Enable(c, n::kIpv6);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(c.IsEnabled(n::kIpv6));
  EXPECT_TRUE(c.IsEnabled(n::kInet));  // IPV6 -> INET -> NET.
  EXPECT_TRUE(c.IsEnabled(n::kNet));
  EXPECT_GE(result->auto_enabled.size(), 2u);
}

TEST(ResolverTest, NoDuplicateAutoEnables) {
  Config c;
  Resolver resolver(OptionDb::Linux40());
  (void)resolver.Enable(c, n::kNet);
  auto result = resolver.Enable(c, n::kUnix);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->auto_enabled.empty());  // NET was already on.
}

TEST(ResolverTest, UnknownOptionFails) {
  Config c;
  Resolver resolver(OptionDb::Linux40());
  auto result = resolver.Enable(c, "NOT_A_REAL_OPTION");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.err(), Err::kNoEnt);
}

TEST(ResolverTest, ConflictLeavesConfigUntouched) {
  Config c;
  c.set_kml_patch_applied(true);
  Resolver resolver(OptionDb::Linux40());
  ASSERT_TRUE(resolver.Enable(c, n::kParavirt).ok());
  size_t before = c.EnabledCount();
  auto result = resolver.Enable(c, n::kKml);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.err(), Err::kInval);
  EXPECT_EQ(c.EnabledCount(), before);
  EXPECT_FALSE(c.IsEnabled(n::kKml));
}

TEST(ResolverTest, ValidateCatchesMissingDependency) {
  Config c;
  c.Enable(n::kIpv6);  // Without INET.
  Resolver resolver(OptionDb::Linux40());
  Status s = resolver.Validate(c);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("IPV6"), std::string::npos);
}

TEST(ResolverTest, ValidateCatchesConflicts) {
  Config c;
  c.set_kml_patch_applied(true);
  c.Enable(n::kParavirt);
  c.Enable(n::kKml);
  c.Enable(n::kVsyscallEmulation);
  Resolver resolver(OptionDb::Linux40());
  EXPECT_FALSE(resolver.Validate(c).ok());
}

TEST(ResolverTest, ValidateCatchesUnpatchedKml) {
  Config c;
  c.Enable(n::kKml);
  c.Enable(n::kVsyscallEmulation);
  Resolver resolver(OptionDb::Linux40());
  Status s = resolver.Validate(c);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("KML"), std::string::npos);
}

TEST(ResolverTest, NumaRequiresSmp) {
  Config c;
  Resolver resolver(OptionDb::Linux40());
  ASSERT_TRUE(resolver.Enable(c, n::kNuma).ok());
  EXPECT_TRUE(c.IsEnabled(n::kSmp));
}

}  // namespace
}  // namespace lupine::kconfig

#include "tools/benchdiff_lib.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lupine::tools {
namespace {

TEST(GlobMatchTest, MatchesWholeKey) {
  EXPECT_TRUE(GlobMatch("*", "anything.at.all"));
  EXPECT_TRUE(GlobMatch("sweep.*.retries", "sweep.2.retries"));
  EXPECT_TRUE(GlobMatch("*wall_ms", "fleet.total_wall_ms"));
  EXPECT_TRUE(GlobMatch("*queue_wait*", "scenarios.1.queue_wait_p95"));
  EXPECT_FALSE(GlobMatch("sweep.*.retries", "sweep.2.recovered"));
  EXPECT_FALSE(GlobMatch("wall_ms", "total_wall_ms"));  // No implicit prefix.
  EXPECT_TRUE(GlobMatch("a**b", "ab"));
  EXPECT_FALSE(GlobMatch("", "x"));
  EXPECT_TRUE(GlobMatch("", ""));
}

TEST(FlattenBenchTest, FlattensNestedArraysAndScalars) {
  auto doc = FlattenBench(R"({
    "bench": "chaos",
    "sweep": [
      {"p": 0.0, "retries": 0, "ok": true},
      {"p": 0.5, "retries": 8, "ok": false}
    ],
    "totals": {"boots": 40}
  })");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->strings.at("bench"), "chaos");
  EXPECT_DOUBLE_EQ(doc->numbers.at("sweep.0.p"), 0.0);
  EXPECT_DOUBLE_EQ(doc->numbers.at("sweep.1.retries"), 8.0);
  EXPECT_DOUBLE_EQ(doc->numbers.at("sweep.0.ok"), 1.0);  // Booleans as 0/1.
  EXPECT_DOUBLE_EQ(doc->numbers.at("sweep.1.ok"), 0.0);
  EXPECT_DOUBLE_EQ(doc->numbers.at("totals.boots"), 40.0);
  EXPECT_FALSE(FlattenBench("not json").ok());
}

TEST(ParseRulesTest, ParsesDirectionsAndThresholds) {
  auto rules = ParseRules(R"([
    {"pattern": "*wall_ms", "direction": "informational", "threshold": 0.0},
    {"pattern": "*.completion_rate", "direction": "higher-better", "threshold": 0.05},
    {"pattern": "*.makespan_ms", "direction": "lower-better", "threshold": 0.1},
    {"pattern": "*", "direction": "two-sided", "threshold": 0.2}
  ])");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 4u);
  EXPECT_EQ((*rules)[0].direction, Direction::kInformational);
  EXPECT_EQ((*rules)[1].direction, Direction::kHigherIsBetter);
  EXPECT_EQ((*rules)[2].direction, Direction::kLowerIsBetter);
  EXPECT_EQ((*rules)[3].direction, Direction::kTwoSided);
  EXPECT_DOUBLE_EQ((*rules)[1].threshold, 0.05);
}

TEST(ParseRulesTest, RejectsBadDocuments) {
  EXPECT_FALSE(ParseRules("{}").ok());  // Must be an array.
  EXPECT_FALSE(ParseRules(R"([{"pattern": "x", "direction": "sideways"}])").ok());
  EXPECT_FALSE(ParseRules(R"([{"direction": "two-sided"}])").ok());  // No pattern.
}

FlatDoc Doc(std::map<std::string, double> numbers,
            std::map<std::string, std::string> strings = {}) {
  FlatDoc doc;
  doc.numbers = std::move(numbers);
  doc.strings = std::move(strings);
  return doc;
}

// Label-mismatch rows annotate the key with the value flip
// ("sweep.0.site (\"a\" -> \"b\")"), so match on the key prefix.
const Delta& FindDelta(const DiffReport& report, const std::string& key) {
  for (const Delta& delta : report.deltas) {
    if (delta.key == key || delta.key.rfind(key + " (", 0) == 0) {
      return delta;
    }
  }
  ADD_FAILURE() << "no delta for " << key;
  static Delta none;
  return none;
}

TEST(CompareTest, DirectionalVerdicts) {
  const std::vector<Rule> rules = {
      {"makespan", Direction::kLowerIsBetter, 0.10},
      {"rate", Direction::kHigherIsBetter, 0.10},
      {"boots", Direction::kTwoSided, 0.10},
      {"wall", Direction::kInformational, 0.0},
  };
  const FlatDoc baseline =
      Doc({{"makespan", 100.0}, {"rate", 1.0}, {"boots", 40.0}, {"wall", 5.0}});

  // Everything within threshold.
  auto report = Compare(baseline, Doc({{"makespan", 105.0}, {"rate", 0.95},
                                       {"boots", 42.0}, {"wall", 50.0}}),
                        rules);
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(FindDelta(report, "makespan").verdict, Verdict::kOk);
  EXPECT_EQ(FindDelta(report, "wall").verdict, Verdict::kOk);  // Never gates.

  // Beyond threshold in the bad direction for each rule.
  report = Compare(baseline, Doc({{"makespan", 120.0}, {"rate", 0.8},
                                  {"boots", 30.0}, {"wall", 500.0}}),
                   rules);
  EXPECT_EQ(FindDelta(report, "makespan").verdict, Verdict::kRegressed);
  EXPECT_EQ(FindDelta(report, "rate").verdict, Verdict::kRegressed);
  EXPECT_EQ(FindDelta(report, "boots").verdict, Verdict::kRegressed);
  EXPECT_EQ(FindDelta(report, "wall").verdict, Verdict::kOk);
  EXPECT_EQ(report.regressions, 3u);

  // Beyond threshold in the good direction.
  report = Compare(baseline, Doc({{"makespan", 80.0}, {"rate", 1.3},
                                  {"boots", 40.0}, {"wall", 5.0}}),
                   rules);
  EXPECT_EQ(FindDelta(report, "makespan").verdict, Verdict::kImproved);
  EXPECT_EQ(FindDelta(report, "rate").verdict, Verdict::kImproved);
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 2u);

  // Two-sided regresses on big moves either way.
  report = Compare(baseline, Doc({{"makespan", 100.0}, {"rate", 1.0},
                                  {"boots", 60.0}, {"wall", 5.0}}),
                   rules);
  EXPECT_EQ(FindDelta(report, "boots").verdict, Verdict::kRegressed);
}

TEST(CompareTest, NewMissingAndZeroBaseline) {
  const std::vector<Rule> rules = {{"*", Direction::kTwoSided, 0.10}};
  auto report = Compare(Doc({{"gone", 1.0}, {"zero", 0.0}}),
                        Doc({{"fresh", 2.0}, {"zero", 3.0}}), rules);
  // A metric that disappeared gates; a brand-new one is informational.
  EXPECT_EQ(FindDelta(report, "gone").verdict, Verdict::kMissing);
  EXPECT_EQ(FindDelta(report, "fresh").verdict, Verdict::kNew);
  // From a zero baseline any movement is infinite relative change, which
  // regresses under a two-sided rule — so "gone" + "zero" both gate.
  const Delta& zero = FindDelta(report, "zero");
  EXPECT_TRUE(std::isinf(zero.rel));
  EXPECT_EQ(zero.verdict, Verdict::kRegressed);
  EXPECT_EQ(report.regressions, 2u);
}

TEST(CompareTest, LabelMismatchGates) {
  const std::vector<Rule> rules = {{"*", Direction::kTwoSided, 0.10}};
  auto report = Compare(Doc({}, {{"sweep.0.site", "boot-initcall"}}),
                        Doc({}, {{"sweep.0.site", "rootfs-corrupt"}}), rules);
  EXPECT_EQ(FindDelta(report, "sweep.0.site").verdict, Verdict::kLabelMismatch);
  EXPECT_EQ(report.regressions, 1u);
  // Identical labels do not gate.
  report = Compare(Doc({}, {{"sweep.0.site", "x"}}), Doc({}, {{"sweep.0.site", "x"}}),
                   rules);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(CompareTest, InformationalRuleExemptsStringDrift) {
  // Determinism digests change with every intentional cost-model tweak;
  // an informational rule must keep that churn out of the gate while a
  // sibling label stays identity-checked.
  const std::vector<Rule> rules = {
      {"*.digest", Direction::kInformational, 0.0},
      {"*", Direction::kTwoSided, 0.10},
  };
  auto report = Compare(
      Doc({}, {{"determinism.workers.0.digest", "aaaa"}, {"scenarios.0.name", "pipe"}}),
      Doc({}, {{"determinism.workers.0.digest", "bbbb"}, {"scenarios.0.name", "ping"}}),
      rules);
  EXPECT_EQ(report.regressions, 1u);
  for (const auto& delta : report.deltas) {
    if (delta.key.find("digest") != std::string::npos) {
      EXPECT_EQ(delta.verdict, Verdict::kOk);
    }
    if (delta.key.find("name") != std::string::npos) {
      EXPECT_EQ(delta.verdict, Verdict::kLabelMismatch);
    }
  }
}

TEST(CompareTest, FirstMatchingRuleWins) {
  const std::vector<Rule> rules = {
      {"*wall_ms", Direction::kInformational, 0.0},
      {"*", Direction::kTwoSided, 0.01},
  };
  auto report = Compare(Doc({{"boot_wall_ms", 10.0}}), Doc({{"boot_wall_ms", 99.0}}),
                        rules);
  EXPECT_EQ(FindDelta(report, "boot_wall_ms").verdict, Verdict::kOk);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(CompareTest, DefaultRulesTreatWallClockAsInformational) {
  auto report = Compare(Doc({{"fleet.total_wall_ms", 10.0}, {"totals.boots", 40.0}}),
                        Doc({{"fleet.total_wall_ms", 400.0}, {"totals.boots", 40.0}}),
                        DefaultRules());
  EXPECT_EQ(report.regressions, 0u);
  report = Compare(Doc({{"totals.boots", 40.0}}), Doc({{"totals.boots", 10.0}}),
                   DefaultRules());
  EXPECT_EQ(report.regressions, 1u);
}

TEST(RenderReportTest, RendersVerdictRowsAndSummary) {
  const std::vector<Rule> rules = {{"*", Direction::kLowerIsBetter, 0.10}};
  auto report = Compare(Doc({{"a.makespan", 100.0}, {"b.steady", 5.0}}),
                        Doc({{"a.makespan", 150.0}, {"b.steady", 5.0}}), rules);
  const std::string text = RenderReport("BENCH_x.json", report);
  EXPECT_NE(text.find("BENCH_x.json"), std::string::npos);
  EXPECT_NE(text.find("a.makespan"), std::string::npos);
  EXPECT_NE(text.find("regressed"), std::string::npos);
  // Unchanged rows fold into the summary count unless verbose.
  EXPECT_EQ(text.find("b.steady"), std::string::npos);
  const std::string verbose = RenderReport("BENCH_x.json", report, /*verbose=*/true);
  EXPECT_NE(verbose.find("b.steady"), std::string::npos);
}

}  // namespace
}  // namespace lupine::tools

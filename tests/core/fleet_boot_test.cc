// Parallel fleet boot. The FleetBootStormTest suite is Boot()-only — no
// fiber ever runs — so it is ThreadSanitizer-compatible and runs in the tsan
// CI leg (the filter selects it by suite name). FleetBootTest exercises the
// workload/supervised modes, which do run guest fibers (thread-local, one
// worker per VM) and therefore stay out of the tsan leg.
#include "src/core/fleet_boot.h"

#include <gtest/gtest.h>

#include "src/kconfig/presets.h"

namespace lupine::core {
namespace {

// One warm cache for the whole file: artifacts are immutable and the boot
// figures are deterministic, so sharing only saves build time. The warmup
// boot matters — ctest runs each test in its own process, and cold
// provisioning is charged in virtual time (ProvisionCostModel), so a cold
// first run would skew the virtual makespan/total comparisons below.
KernelCache& Cache() {
  static KernelCache* cache = [] {
    auto* owned = new KernelCache();
    FleetBootOptions warmup;
    auto warm = RunFleetBoot(*owned, warmup);
    if (!warm.ok()) {
      ADD_FAILURE() << "cache warmup: " << warm.status().ToString();
    }
    return owned;
  }();
  return *cache;
}

TEST(FleetBootStormTest, EightWorkerStormBuildsEachRootfsOnce) {
  KernelCache cache;  // Fresh: this test is about cold-cache build counts.
  FleetBootOptions options;
  options.workers = 8;
  options.rounds = 2;
  auto result = RunFleetBoot(cache, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const size_t fleet = kconfig::Top20AppNames().size();
  EXPECT_EQ(result->boots, 2 * fleet);
  EXPECT_EQ(result->failures, 0u);

  // Eight racing workers, two rounds: still exactly one rootfs build per
  // distinct (container image, RootfsOptions) pair and one kernel build per
  // distinct fingerprint.
  auto rootfs = cache.rootfs_stats();
  EXPECT_EQ(rootfs.builds, fleet);
  EXPECT_EQ(rootfs.hits + rootfs.builds, rootfs.requests);
  EXPECT_EQ(cache.stats().builds, 16u);  // 5 runtimes share lupine-base.
}

TEST(FleetBootStormTest, WarmStormsBuildNoRootfs) {
  FleetBootOptions options;
  options.workers = 8;
  (void)RunFleetBoot(Cache(), options);  // Warm every artifact.
  const size_t rootfs_builds = Cache().rootfs_stats().builds;
  const size_t kernel_builds = Cache().stats().builds;

  options.rounds = 3;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->failures, 0u);
  EXPECT_EQ(Cache().rootfs_stats().builds, rootfs_builds);
  EXPECT_EQ(Cache().stats().builds, kernel_builds);
}

TEST(FleetBootStormTest, VirtualMakespanScalesWithWorkers) {
  FleetBootOptions options;
  options.rounds = 2;
  options.workers = 1;
  auto serial = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(serial.ok());
  options.workers = 4;
  auto pooled = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(pooled.ok());

  // Virtual time is deterministic, so this is an exact property of the
  // sharding, not a host-speed flake: four workers' makespan is the largest
  // shard, well under half the serial sum.
  EXPECT_EQ(serial->virtual_makespan, serial->virtual_boot_total);
  EXPECT_EQ(pooled->virtual_boot_total, serial->virtual_boot_total);
  EXPECT_GE(serial->virtual_makespan, 2 * pooled->virtual_makespan);
  EXPECT_GE(pooled->boots_per_virtual_sec, 2.0 * serial->boots_per_virtual_sec);
}

TEST(FleetBootStormTest, VirtualTimelineIsDeterministic) {
  FleetBootOptions options;
  options.workers = 3;
  auto first = RunFleetBoot(Cache(), options);
  auto second = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->virtual_makespan, second->virtual_makespan);
  EXPECT_EQ(first->worker_virtual, second->worker_virtual);
}

TEST(FleetBootTest, WorkloadModeRunsGuestsAndParksServers) {
  FleetBootOptions options;
  options.apps = {"hello-world", "redis"};  // One batch job, one server.
  options.workers = 2;
  options.run_workload = true;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->boots, 2u);
  EXPECT_EQ(result->failures, 0u);  // The parked server is not a failure.
}

TEST(FleetBootTest, SupervisedModeDrivesEachShardThroughASupervisor) {
  FleetBootOptions options;
  options.workers = 4;
  options.supervised = true;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->failures, 0u);
  EXPECT_EQ(result->boots, kconfig::Top20AppNames().size());
  EXPECT_GT(result->virtual_makespan, 0);
  EXPECT_EQ(result->worker_virtual.size(), 4u);
}

TEST(FleetBootTest, AdmissionControllerKeepsFleetUnderBudget) {
  vmm::FleetAdmissionController admission({1 * kGiB, 0});
  telemetry::MetricRegistry registry;
  admission.set_metrics(&registry);

  FleetBootOptions options;
  options.workers = 4;
  options.memory = 512 * kMiB;
  options.min_memory = 64 * kMiB;  // Degradation floor when the host is full.
  options.admission = &admission;
  options.metrics = &registry;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const size_t fleet = kconfig::Top20AppNames().size();
  // Every launch goes through the controller; with a 64 MiB floor available
  // nothing is ever rejected, so every app still boots.
  EXPECT_EQ(result->boots, fleet);
  EXPECT_EQ(result->failures, 0u);
  EXPECT_EQ(result->rejected, 0u);
  EXPECT_EQ(result->admitted + result->degraded, fleet);

  // The budget is a hard ceiling: the controller's high-water mark — which
  // the rollup adopts as fleet_resident_peak — never exceeds it.
  EXPECT_LE(admission.stats().peak_committed, 1 * kGiB);
  EXPECT_EQ(result->fleet_resident_peak, admission.stats().peak_committed);
  EXPECT_EQ(admission.stats().committed, 0u);  // Clean drain on VM exit.
  EXPECT_EQ(admission.stats().requests, fleet);

  // Rollups are populated per worker and fleet-wide.
  EXPECT_EQ(result->worker_resident_peak.size(), 4u);
  EXPECT_GT(result->fleet_resident_sum, 0u);
  EXPECT_EQ(registry.GetCounter("admission.requests").value(), fleet);
}

TEST(FleetBootTest, AdmissionRejectionsCountAsFailures) {
  // A budget no request can ever fit in: every launch is rejected up front.
  vmm::FleetAdmissionController admission({16 * kMiB, 0});
  FleetBootOptions options;
  options.apps = {"hello-world", "redis"};
  options.memory = 512 * kMiB;  // No min_memory: nothing to degrade to.
  options.admission = &admission;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->boots, 0u);
  EXPECT_EQ(result->failures, 2u);
  EXPECT_EQ(result->rejected, 2u);
  EXPECT_EQ(admission.stats().rejected, 2u);
}

TEST(FleetBootTest, ArtifactFailurePropagatesAsStatus) {
  KernelCache cache;
  FleetBootOptions options;
  options.apps = {"no-such-app"};
  auto result = RunFleetBoot(cache, options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace lupine::core

// Bounded retention in the KernelCache: size-aware LRU budgets for kernel
// images and app artifacts, pinning of everything a caller still holds, and
// bounded memory under a fleet that keeps rebuilding with churning options.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/multik.h"
#include "src/kconfig/option_names.h"

namespace lupine::core {
namespace {

namespace n = kconfig::names;

// Distinct option subsets -> distinct specialized configs -> distinct kernel
// fingerprints. Seven independent axes give 128 distinct fleets to churn.
BuildOptions ChurnOptions(int i) {
  static const std::vector<std::string> pool = {
      n::kHugetlbfs, n::kSysvipc, n::kPosixMqueue, n::kCgroups,
      n::kAudit,     n::kSeccomp, n::kNuma};
  BuildOptions options;
  for (size_t bit = 0; bit < pool.size(); ++bit) {
    if ((static_cast<unsigned>(i) >> bit) & 1u) {
      options.extra_options.push_back(pool[bit]);
    }
  }
  return options;
}

TEST(MultikEvictionTest, ChurningExtraOptionsStaysUnderTheKernelByteBudget) {
  // Measure one image to size the budget.
  Bytes image_size = 0;
  {
    KernelCache probe;
    auto artifact = probe.GetOrBuild("hello-world");
    ASSERT_TRUE(artifact.ok());
    image_size = (*artifact)->kernel->size;
  }

  CacheBudget kernel_budget;
  kernel_budget.max_bytes = 4 * image_size;
  // Keep the artifact budget tighter than the kernel budget: stored
  // artifacts pin their kernels, so a roomy artifact store would hold the
  // kernel store over its byte budget through pins alone.
  CacheBudget artifact_budget;
  artifact_budget.max_entries = 2;
  KernelCache cache(BuildOptions{}, artifact_budget, kernel_budget);

  for (int i = 0; i < 100; ++i) {
    auto artifact = cache.GetOrBuild("hello-world", ChurnOptions(i % 128));
    ASSERT_TRUE(artifact.ok()) << "iteration " << i;
    auto stats = cache.stats();
    // The returned artifact pins its own kernel, so the live store may carry
    // the budget plus the single pinned image, never more.
    EXPECT_LE(stats.bytes_stored, kernel_budget.max_bytes + image_size)
        << "iteration " << i;
  }

  auto stats = cache.stats();
  EXPECT_GT(stats.kernel_evictions, 50u);
  EXPECT_GT(stats.artifact_evictions, 50u);
  EXPECT_GT(stats.bytes_evicted, 0u);
  // bytes_if_unshared keeps counting evicted fleets: the savings figure
  // reflects the whole churn, not just the resident slice.
  EXPECT_GT(stats.bytes_if_unshared, stats.bytes_stored);
}

TEST(MultikEvictionTest, HeldArtifactsPinTheirKernels) {
  KernelCache cache;
  auto held = cache.GetOrBuild("redis");
  ASSERT_TRUE(held.ok());
  {
    // Build nginx but drop the reference: only unpinned entries may go.
    auto other = cache.GetOrBuild("nginx");
    ASSERT_TRUE(other.ok());
  }

  CacheBudget tiny;
  tiny.max_bytes = 1;
  cache.set_budgets(tiny, tiny);

  // redis (held) survived both levels; nginx (dropped) was evicted.
  auto stats = cache.stats();
  EXPECT_GE(stats.artifact_evictions, 1u);
  EXPECT_GE(stats.kernel_evictions, 1u);
  const size_t builds_before = stats.builds;
  auto again = cache.GetOrBuild("redis");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *held);  // Same artifact object, no rebuild.
  EXPECT_EQ(cache.stats().builds, builds_before);
}

TEST(MultikEvictionTest, EvictedKernelIsRebuiltOnDemand) {
  CacheBudget artifact_budget;
  artifact_budget.max_entries = 1;
  CacheBudget kernel_budget;
  kernel_budget.max_entries = 1;
  KernelCache cache(BuildOptions{}, artifact_budget, kernel_budget);

  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  ASSERT_TRUE(cache.GetOrBuild("nginx").ok());  // Evicts redis at both levels.
  EXPECT_EQ(cache.stats().distinct_kernels, 1u);

  const size_t builds_before = cache.stats().builds;
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());  // Miss: transparent rebuild.
  EXPECT_EQ(cache.stats().builds, builds_before + 1);
}

}  // namespace
}  // namespace lupine::core

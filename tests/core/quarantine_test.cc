// Artifact quarantine: rebuild-once-then-poison containment for cached
// artifacts whose launches keep failing.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/multik.h"

namespace lupine::core {
namespace {

// A cache on a manual quarantine clock, so TTL expiry is a test decision.
struct ManualClockCache {
  KernelCache cache;
  Nanos now = 0;

  explicit ManualClockCache(QuarantinePolicy policy = {}) {
    cache.set_quarantine(policy);
    cache.set_quarantine_clock([this] { return now; });
  }
};

TEST(QuarantineTest, RebuildOnceThenPoisonThenTtlProbe) {
  ManualClockCache fixture;
  KernelCache& cache = fixture.cache;
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  const size_t rootfs_builds = cache.rootfs_stats().builds;

  // Strike one: the artifact (and its rootfs blob) is dropped for a rebuild.
  cache.ReportLaunchFailure("redis");
  EXPECT_EQ(cache.stats().quarantine_rebuilds, 1u);
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  EXPECT_EQ(cache.rootfs_stats().builds, rootfs_builds + 1);
  EXPECT_EQ(cache.rootfs_stats().invalidations, 1u);

  // Strike two: the rebuild failed too — the key is poisoned and GetOrBuild
  // fails fast with a quarantine denial.
  cache.ReportLaunchFailure("redis");
  EXPECT_EQ(cache.stats().quarantine_poisoned, 1u);
  auto denied = cache.GetOrBuild("redis");
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(KernelCache::IsQuarantineDenial(denied.status()));
  EXPECT_FALSE(cache.GetOrBuild("redis").ok());
  EXPECT_EQ(cache.stats().quarantine_denials, 2u);

  // Other apps are unaffected.
  EXPECT_TRUE(cache.GetOrBuild("nginx").ok());

  // TTL passes: one probe rebuild is allowed through, with a fresh cycle.
  fixture.now += QuarantinePolicy{}.poison_ttl + 1;
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  cache.ReportLaunchFailure("redis");
  EXPECT_EQ(cache.stats().quarantine_rebuilds, 2u);  // Fresh rebuild grant.
  EXPECT_EQ(cache.stats().quarantine_poisoned, 1u);
}

TEST(QuarantineTest, DisabledPolicyNeverDropsOrDenies) {
  ManualClockCache fixture(QuarantinePolicy{.enabled = false});
  KernelCache& cache = fixture.cache;
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  for (int i = 0; i < 10; ++i) {
    cache.ReportLaunchFailure("redis");
  }
  EXPECT_TRUE(cache.GetOrBuild("redis").ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.quarantine_failures, 0u);
  EXPECT_EQ(stats.quarantine_rebuilds, 0u);
  EXPECT_EQ(stats.quarantine_poisoned, 0u);
  EXPECT_EQ(stats.quarantine_denials, 0u);
}

TEST(QuarantineTest, FailuresPerStrikeToleratesFlakyLaunches) {
  ManualClockCache fixture(QuarantinePolicy{.failures_per_strike = 3});
  KernelCache& cache = fixture.cache;
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  cache.ReportLaunchFailure("redis");
  cache.ReportLaunchFailure("redis");
  EXPECT_EQ(cache.stats().quarantine_rebuilds, 0u);  // Two strikes tolerated.
  cache.ReportLaunchFailure("redis");
  EXPECT_EQ(cache.stats().quarantine_rebuilds, 1u);  // Third completes a strike.
  EXPECT_EQ(cache.stats().quarantine_failures, 3u);
}

TEST(QuarantineTest, RebuildLimitGrantsMultipleRebuilds) {
  ManualClockCache fixture(QuarantinePolicy{.rebuild_limit = 2});
  KernelCache& cache = fixture.cache;
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  cache.ReportLaunchFailure("redis");
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  cache.ReportLaunchFailure("redis");
  EXPECT_EQ(cache.stats().quarantine_rebuilds, 2u);
  EXPECT_EQ(cache.stats().quarantine_poisoned, 0u);
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  cache.ReportLaunchFailure("redis");  // Third strike exceeds the limit.
  EXPECT_EQ(cache.stats().quarantine_poisoned, 1u);
  EXPECT_FALSE(cache.GetOrBuild("redis").ok());
}

TEST(QuarantineTest, PoisonedReportsAreIgnoredUntilProbe) {
  ManualClockCache fixture;
  KernelCache& cache = fixture.cache;
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  cache.ReportLaunchFailure("redis");
  cache.ReportLaunchFailure("redis");
  ASSERT_EQ(cache.stats().quarantine_poisoned, 1u);
  // Stragglers mid-flight keep reporting; the state machine must not spin.
  cache.ReportLaunchFailure("redis");
  cache.ReportLaunchFailure("redis");
  EXPECT_EQ(cache.stats().quarantine_poisoned, 1u);
  EXPECT_EQ(cache.stats().quarantine_rebuilds, 1u);
}

// Storm: concurrent GetOrBuild + failure reports on one key must stay
// consistent (no lost counts, no deadlock, denial status well-formed).
// Boot()-free and fiber-free, so the tsan leg can run it.
TEST(QuarantineStormTest, ConcurrentReportsAndRequestsStayConsistent) {
  KernelCache cache;
  Nanos now = 0;  // Never advances: poison never expires mid-storm.
  cache.set_quarantine_clock([&now] { return now; });
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<size_t> denials{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &denials] {
      for (int i = 0; i < kPerThread; ++i) {
        auto artifact = cache.GetOrBuild("redis");
        if (!artifact.ok()) {
          EXPECT_TRUE(KernelCache::IsQuarantineDenial(artifact.status()));
          denials.fetch_add(1);
          continue;
        }
        cache.ReportLaunchFailure("redis");
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto stats = cache.stats();
  // Every loop iteration either reported a failure or was denied.
  EXPECT_EQ(stats.quarantine_failures + denials.load(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.quarantine_denials, denials.load());
  EXPECT_EQ(stats.quarantine_rebuilds, 1u);
  EXPECT_EQ(stats.quarantine_poisoned, 1u);
}

}  // namespace
}  // namespace lupine::core

#include "src/core/multik.h"

#include <gtest/gtest.h>

#include "src/kconfig/presets.h"
#include "src/workload/app_bench.h"

namespace lupine::core {
namespace {

TEST(MultikTest, LanguageRuntimesShareOneKernel) {
  // golang, python, openjdk, php and hello-world all need zero options
  // beyond lupine-base (Table 3): one kernel serves all five.
  KernelCache cache;
  for (const std::string app : {"golang", "python", "openjdk", "php", "hello-world"}) {
    auto artifact = cache.GetOrBuild(app);
    ASSERT_TRUE(artifact.ok()) << app;
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.apps, 5u);
  EXPECT_EQ(stats.distinct_kernels, 1u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.bytes_saved(), 4 * stats.bytes_stored);
}

TEST(MultikTest, DistinctOptionSetsGetDistinctKernels) {
  KernelCache cache;
  ASSERT_TRUE(cache.GetOrBuild("redis").ok());
  ASSERT_TRUE(cache.GetOrBuild("nginx").ok());
  auto stats = cache.stats();
  EXPECT_EQ(stats.distinct_kernels, 2u);
}

TEST(MultikTest, RepeatRequestsHitTheCache) {
  KernelCache cache;
  auto first = cache.GetOrBuild("redis");
  auto second = cache.GetOrBuild("redis");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());  // Same artifact pointer.
  auto stats = cache.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.builds, 1u);
}

TEST(MultikTest, SharedKernelDistinctRootfs) {
  KernelCache cache;
  auto golang = cache.GetOrBuild("golang");
  auto python = cache.GetOrBuild("python");
  ASSERT_TRUE(golang.ok());
  ASSERT_TRUE(python.ok());
  EXPECT_EQ((*golang)->kernel, (*python)->kernel);  // Shared image.
  EXPECT_NE((*golang)->rootfs, (*python)->rootfs);  // Own filesystem.
}

TEST(MultikTest, Top20FleetStats) {
  KernelCache cache;
  for (const auto& app : kconfig::Top20AppNames()) {
    ASSERT_TRUE(cache.GetOrBuild(app).ok()) << app;
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.apps, 20u);
  // 5 zero-option apps share one kernel; every other set is unique here.
  EXPECT_EQ(stats.distinct_kernels, 16u);
  EXPECT_GT(stats.bytes_saved(), 10 * kMiB);
}

TEST(MultikTest, CachedArtifactsBootAndRun) {
  KernelCache cache;
  auto artifact = cache.GetOrBuild("redis");
  ASSERT_TRUE(artifact.ok());
  auto vm = (*artifact)->Launch();
  ASSERT_TRUE(workload::BootAppServer(*vm, "Ready to accept connections"));
}

TEST(MultikTest, FingerprintIgnoresConfigName) {
  kconfig::Config a = kconfig::LupineBase();
  kconfig::Config b = kconfig::LupineBase();
  b.set_name("renamed");
  EXPECT_EQ(KernelCache::ConfigFingerprint(a), KernelCache::ConfigFingerprint(b));
  b.Enable("FUTEX");
  EXPECT_NE(KernelCache::ConfigFingerprint(a), KernelCache::ConfigFingerprint(b));
}

}  // namespace
}  // namespace lupine::core

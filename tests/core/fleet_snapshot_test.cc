// Fleet boot with a snapshot store: planned capture/restore, the launch-cost
// split, and the storm determinism contract. FleetSnapshotStormTest is
// Boot/Restore-only (no fiber runs), so it rides the tsan CI leg.
#include <gtest/gtest.h>

#include <string>

#include "src/core/fleet_boot.h"
#include "src/core/snapshot_cache.h"
#include "src/kconfig/presets.h"
#include "src/telemetry/journal.h"
#include "src/util/fault.h"

namespace lupine::core {
namespace {

KernelCache& Cache() {
  static KernelCache* cache = [] {
    auto* owned = new KernelCache();
    FleetBootOptions warmup;
    auto warm = RunFleetBoot(*owned, warmup);
    if (!warm.ok()) {
      ADD_FAILURE() << "cache warmup: " << warm.status().ToString();
    }
    return owned;
  }();
  return *cache;
}

TEST(FleetSnapshotStormTest, FirstTaskPerKeyCapturesAndTheRestRestore) {
  SnapshotCache snapshots;
  FleetBootOptions options;
  options.workers = 4;
  options.rounds = 3;
  options.snapshots = &snapshots;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // One capture per distinct snapshot key; every other launch restores.
  // Top-20 runtimes share kernels (and some share rootfs blobs), so the
  // distinct-key count is the store's entry count, not the app count.
  const size_t distinct_keys = snapshots.stats().entries;
  EXPECT_GT(distinct_keys, 0u);
  EXPECT_EQ(result->snapshot_captures, distinct_keys);
  EXPECT_EQ(result->snapshot_restores, result->boots - result->snapshot_captures);
  EXPECT_EQ(result->snapshot_restore_failures, 0u);
  EXPECT_EQ(result->failures, 0u);

  // The launch-cost split is the headline: mean restore well under half the
  // mean cold boot.
  ASSERT_GT(result->snapshot_restores, 0u);
  ASSERT_GT(result->snapshot_captures, 0u);
  const double mean_restore = static_cast<double>(result->virtual_restore_total) /
                              static_cast<double>(result->snapshot_restores);
  const double mean_cold = static_cast<double>(result->virtual_coldboot_total) /
                           static_cast<double>(result->snapshot_captures);
  EXPECT_LT(mean_restore, mean_cold * 0.5);
}

TEST(FleetSnapshotStormTest, PrebakedStoreRestoresEverywhere) {
  SnapshotCache snapshots;
  FleetBootOptions seed_run;
  seed_run.snapshots = &snapshots;
  auto seeded = RunFleetBoot(Cache(), seed_run);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  ASSERT_GT(snapshots.stats().entries, 0u);

  // Second fleet against the now-populated store: zero captures, all restores.
  FleetBootOptions options;
  options.workers = 4;
  options.snapshots = &snapshots;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->snapshot_captures, 0u);
  EXPECT_EQ(result->snapshot_restores, result->boots);
}

TEST(FleetSnapshotStormTest, SnapshotFleetBeatsColdFleetOnVirtualTime) {
  FleetBootOptions cold;
  cold.rounds = 2;
  auto cold_result = RunFleetBoot(Cache(), cold);
  ASSERT_TRUE(cold_result.ok()) << cold_result.status().ToString();

  SnapshotCache snapshots;
  FleetBootOptions warm = cold;
  warm.snapshots = &snapshots;
  auto warm_result = RunFleetBoot(Cache(), warm);
  ASSERT_TRUE(warm_result.ok()) << warm_result.status().ToString();

  // Captures cost extra virtual time, but round 2's restores more than pay
  // for them: the snapshot fleet finishes earlier.
  EXPECT_LT(warm_result->virtual_boot_total, cold_result->virtual_boot_total);
}

TEST(FleetSnapshotStormTest, RestoreFaultFallsBackToColdBootAndQuarantines) {
  SnapshotCache snapshots;
  FaultPlan plan;
  // Every redis restore attempt fails: drop-once, recapture, then poison.
  plan.Add({.site = FaultSite::kSnapshotRestore,
            .trigger_on = 1,
            .period = 1,
            .app = "redis"});
  FleetBootOptions options;
  options.apps = {"redis"};
  options.rounds = 6;
  options.workers = 2;
  options.snapshots = &snapshots;
  options.fault_plan = &plan;
  options.retry.max_attempts = 2;  // Failed restore retries as a cold boot.
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(result->snapshot_restore_failures, 0u);
  EXPECT_GT(result->recovered, 0u);  // Retried tasks completed cold.
  EXPECT_EQ(result->failures, 0u);
  auto stats = snapshots.stats();
  EXPECT_GT(stats.drops + stats.poisoned, 0u);
}

TEST(FleetSnapshotStormTest, JournalAndFigureBytesAreWorkerCountInvariant) {
  struct Run {
    std::string journal;
    size_t captures = 0;
    size_t restores = 0;
    Nanos restore_total = 0;
    Nanos coldboot_total = 0;
    Nanos makespan = 0;
  };
  auto run = [](size_t workers) {
    telemetry::Journal journal;
    SnapshotCache snapshots;
    FleetBootOptions options;
    options.workers = workers;
    options.rounds = 2;
    options.snapshots = &snapshots;
    options.journal = &journal;
    auto result = RunFleetBoot(Cache(), options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    Run r;
    r.journal = journal.ExportJsonl(false);
    if (result.ok()) {
      r.captures = result->snapshot_captures;
      r.restores = result->snapshot_restores;
      r.restore_total = result->virtual_restore_total;
      r.coldboot_total = result->virtual_coldboot_total;
      r.makespan = result->virtual_makespan;
    }
    return r;
  };
  const Run base = run(1);
  EXPECT_FALSE(base.journal.empty());
  for (size_t workers : {2u, 4u, 8u}) {
    const Run other = run(workers);
    EXPECT_EQ(base.journal, other.journal) << workers << " workers";
    EXPECT_EQ(base.captures, other.captures) << workers << " workers";
    EXPECT_EQ(base.restores, other.restores) << workers << " workers";
    EXPECT_EQ(base.restore_total, other.restore_total) << workers << " workers";
    EXPECT_EQ(base.coldboot_total, other.coldboot_total) << workers << " workers";
  }
}

}  // namespace
}  // namespace lupine::core

#include "src/core/config_search.h"

#include <gtest/gtest.h>

#include <set>

#include "src/kconfig/presets.h"

namespace lupine::core {
namespace {

std::set<std::string> AsSet(const std::vector<std::string>& v) {
  return std::set<std::string>(v.begin(), v.end());
}

TEST(ConfigSearchTest, HelloWorldNeedsNothing) {
  auto result = DeriveMinimalConfig("hello-world");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->success) << result->failure;
  EXPECT_TRUE(result->added_options.empty());
  EXPECT_EQ(result->boots, 1);
}

TEST(ConfigSearchTest, RedisDiscoversItsTenOptions) {
  auto result = DeriveMinimalConfig("redis");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->success) << result->failure;
  EXPECT_EQ(AsSet(result->added_options), AsSet(kconfig::AppExtraOptions("redis")));
  // One option discovered per boot, plus the final successful boot.
  EXPECT_GE(result->boots, static_cast<int>(result->added_options.size()) + 1);
}

TEST(ConfigSearchTest, DiscoveryIsOneFailureAtATime) {
  auto result = DeriveMinimalConfig("node");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->success) << result->failure;
  EXPECT_EQ(result->added_options.size(), 5u);
  EXPECT_EQ(result->boots, 6);  // 5 failures + 1 success.
}

TEST(ConfigSearchTest, PostgresFindsSysvipcDespiteMultiprocessClass) {
  auto result = DeriveMinimalConfig("postgres");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->success) << result->failure;
  auto found = AsSet(result->added_options);
  EXPECT_TRUE(found.count("SYSVIPC"));
  EXPECT_EQ(found, AsSet(kconfig::AppExtraOptions("postgres")));
}

class SearchMatchesTable3 : public ::testing::TestWithParam<std::string> {};

TEST_P(SearchMatchesTable3, DiscoveredSetEqualsPreset) {
  auto result = DeriveMinimalConfig(GetParam());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->success) << GetParam() << ": " << result->failure;
  EXPECT_EQ(AsSet(result->added_options), AsSet(kconfig::AppExtraOptions(GetParam())))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TopApps, SearchMatchesTable3,
                         ::testing::Values("nginx", "httpd", "mysql", "traefik", "memcached",
                                           "mariadb", "rabbitmq", "wordpress", "haproxy",
                                           "influxdb", "elasticsearch", "mongo", "golang",
                                           "python", "openjdk", "php"));

TEST(ConfigSearchTest, UnknownAppRejected) {
  auto result = DeriveMinimalConfig("not-an-app");
  EXPECT_FALSE(result.ok());
}

TEST(ConfigSearchTest, ErrorHintsCoverAll19UnionOptions) {
  std::set<std::string> hinted;
  for (const auto& hint : ConsoleErrorHints()) {
    for (const auto& candidate : hint.candidates) {
      hinted.insert(candidate);
    }
  }
  for (const auto& app : kconfig::Top20AppNames()) {
    for (const auto& option : kconfig::AppExtraOptions(app)) {
      EXPECT_TRUE(hinted.count(option)) << option;
    }
  }
}

}  // namespace
}  // namespace lupine::core

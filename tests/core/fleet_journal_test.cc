// Flight-recorder integration over RunFleetBoot. FleetJournalStorm is
// Boot()-only (no guest fiber runs), so it qualifies for the tsan CI leg —
// the filter selects it by suite name. The determinism storm is the
// acceptance test for the journal contract: the canonical export must be
// byte-identical across 1/2/4/8 workers for a fixed (plan, seed).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/fleet_boot.h"
#include "src/kconfig/presets.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/util/fault.h"
#include "src/util/retry.h"

namespace lupine::core {
namespace {

KernelCache& Cache() {
  static KernelCache* cache = [] {
    auto* owned = new KernelCache();
    owned->set_quarantine({.enabled = false});
    return owned;
  }();
  return *cache;
}

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.backoff.initial = Millis(10);
  retry.backoff.jitter = 0.0;
  return retry;
}

TEST(FleetJournalStorm, CanonicalExportIsByteIdenticalAcrossWorkerCounts) {
  // Probabilistic faults are the acid test: every retry/deadline/failure
  // event must land at a task-relative virtual offset that only depends on
  // (plan, seed, task index) — never on which worker replayed the task.
  FaultPlan plan;
  plan.seed = 99;
  plan.Add({.site = FaultSite::kBootInitcall, .probability = 0.3});
  plan.Add({.site = FaultSite::kBootDecompress, .probability = 0.1});

  std::string reference;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    telemetry::Journal journal;
    FleetBootOptions options;
    options.workers = workers;
    options.rounds = 2;
    options.retry = FastRetry(4);
    options.fault_plan = &plan;
    options.journal = &journal;
    auto result = RunFleetBoot(Cache(), options);
    ASSERT_TRUE(result.ok()) << "workers=" << workers;
    ASSERT_EQ(journal.dropped(), 0u) << "ring too small for byte-identity";

    const std::string jsonl = journal.ExportJsonl();
    EXPECT_NE(jsonl.find("\"type\":\"task-start\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"retry\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"task-done\""), std::string::npos);
    if (reference.empty()) {
      reference = jsonl;
      continue;
    }
    EXPECT_EQ(jsonl, reference) << "workers=" << workers;
  }
}

TEST(FleetJournalStorm, FullExportAddsScheduleScopedEvents) {
  // A private cache with the journal as sink: cache hit/miss events are
  // schedule-scoped, so they appear only in the full export.
  KernelCache cache;
  cache.set_quarantine({.enabled = false});
  telemetry::Journal journal;
  cache.set_journal(&journal);
  FleetBootOptions options;
  options.workers = 4;
  options.rounds = 2;
  options.journal = &journal;
  auto result = RunFleetBoot(cache, options);
  ASSERT_TRUE(result.ok());
  // The full record is a superset of the canonical one; the cache emits
  // schedule-scoped hit/miss events on every run, so it is a strict superset.
  const size_t canonical = journal.Snapshot(/*include_schedule_scoped=*/false).size();
  const size_t full = journal.Snapshot(/*include_schedule_scoped=*/true).size();
  EXPECT_GT(full, canonical);
  EXPECT_NE(journal.ExportJsonl(true).find("\"source\":\"kernel-cache\""),
            std::string::npos);
}

TEST(FleetJournalStorm, CounterTracksFoldTaskRecords) {
  FleetBootOptions options;
  options.apps = {"hello-world", "redis", "nginx"};
  options.workers = 2;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->counter_tracks.empty());
  bool saw_inflight = false;
  for (const telemetry::CounterSeries& series : result->counter_tracks) {
    ASSERT_FALSE(series.points.empty()) << series.name;
    // Points are time-ordered with one sample per distinct timestamp.
    for (size_t i = 1; i < series.points.size(); ++i) {
      EXPECT_GT(series.points[i].first, series.points[i - 1].first) << series.name;
    }
    if (series.name == "fleet.tasks_inflight") {
      saw_inflight = true;
      // Every task starts and ends: the track returns to zero.
      EXPECT_DOUBLE_EQ(series.points.back().second, 0.0);
    }
  }
  EXPECT_TRUE(saw_inflight);
}

TEST(FleetJournalStorm, RootfsCorruptionIsRetriedAndRecovers) {
  // The regression the chaos bench exposed: injected rootfs corruption used
  // to surface as a permanent parse error (kInval) and bypass the retry
  // policy entirely — retries: 0, recovered: 0 at every probability. It is
  // transient bad-block I/O and must requalify for retry (kIo).
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kRootfsCorrupt, /*max_fires=*/1);
  telemetry::Journal journal;
  FleetBootOptions options;
  options.apps = {"hello-world", "redis"};
  options.retry = FastRetry(3);
  options.fault_plan = &plan;
  options.journal = &journal;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->boots, 2u);
  EXPECT_EQ(result->failures, 0u);
  EXPECT_EQ(result->retries, 2u);
  EXPECT_EQ(result->recovered, 2u);
  EXPECT_EQ(result->unretried_failures, 0u);
  EXPECT_NE(journal.ExportJsonl().find("\"type\":\"retry\""), std::string::npos);
}

TEST(FleetJournalStorm, PermanentErrorsSurfaceAsUnretried) {
  // 1 MiB cannot hold any guest: the boot fails with kNoMem, which is
  // deterministic — retrying would OOM identically. The failure must be
  // counted (and journaled) as unretried instead of vanishing into the
  // aggregate failure count.
  telemetry::MetricRegistry registry;
  telemetry::Journal journal;
  FleetBootOptions options;
  options.apps = {"hello-world"};
  options.memory = 1 * kMiB;
  options.retry = FastRetry(3);
  options.metrics = &registry;
  options.journal = &journal;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->boots, 0u);
  EXPECT_EQ(result->failures, 1u);
  EXPECT_EQ(result->retries, 0u);
  EXPECT_EQ(result->unretried_failures, 1u);
  EXPECT_EQ(registry.GetGauge("fleet.unretried_failures").value(), 1);
  EXPECT_NE(journal.ExportJsonl().find("\"type\":\"unretried\""), std::string::npos);
}

}  // namespace
}  // namespace lupine::core

#include "src/core/lupine.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"
#include "src/workload/app_bench.h"

namespace lupine::core {
namespace {

namespace n = kconfig::names;

TEST(LupineBuilderTest, BuildsRedisUnikernel) {
  LupineBuilder builder;
  auto unikernel = builder.BuildForApp("redis");
  ASSERT_TRUE(unikernel.ok()) << unikernel.status().ToString();
  EXPECT_EQ(unikernel->config.name(), "lupine-redis-kml");
  EXPECT_TRUE(unikernel->config.IsEnabled(n::kKml));
  EXPECT_TRUE(unikernel->config.IsEnabled(n::kEpoll));
  EXPECT_FALSE(unikernel->config.IsEnabled(n::kAio));  // redis needs no AIO.
  EXPECT_GT(unikernel->kernel.size, kMiB);
  EXPECT_FALSE(unikernel->rootfs.empty());
  EXPECT_NE(unikernel->init_script.find("exec /bin/redis"), std::string::npos);
}

TEST(LupineBuilderTest, LaunchBootsAndServes) {
  LupineBuilder builder;
  auto unikernel = builder.BuildForApp("redis");
  ASSERT_TRUE(unikernel.ok());
  auto vm = unikernel->Launch();
  ASSERT_TRUE(workload::BootAppServer(*vm, "Ready to accept connections"))
      << vm->kernel().console().contents();
}

TEST(LupineBuilderTest, HelloRunsToCompletion) {
  LupineBuilder builder;
  auto unikernel = builder.BuildForApp("hello-world");
  ASSERT_TRUE(unikernel.ok());
  auto vm = unikernel->Launch(64 * kMiB);
  auto result = vm->BootAndRun();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString() << result.console;
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.console.find("Hello from Docker!"), std::string::npos);
}

TEST(LupineBuilderTest, NokmlVariant) {
  LupineBuilder builder;
  BuildOptions options;
  options.kml = false;
  auto unikernel = builder.BuildForApp("nginx", options);
  ASSERT_TRUE(unikernel.ok());
  EXPECT_FALSE(unikernel->config.IsEnabled(n::kKml));
  EXPECT_TRUE(unikernel->config.IsEnabled(n::kParavirt));
}

TEST(LupineBuilderTest, TinyVariantUsesOs) {
  LupineBuilder builder;
  BuildOptions options;
  options.tiny = true;
  auto unikernel = builder.BuildForApp("redis", options);
  ASSERT_TRUE(unikernel.ok());
  EXPECT_EQ(unikernel->config.compile_mode(), kconfig::CompileMode::kOs);
}

TEST(LupineBuilderTest, GeneralConfigVariant) {
  LupineBuilder builder;
  BuildOptions options;
  options.general_config = true;
  auto unikernel = builder.BuildForApp("redis", options);
  ASSERT_TRUE(unikernel.ok());
  // lupine-general contains options redis itself does not need.
  EXPECT_TRUE(unikernel->config.IsEnabled(n::kAio));
}

TEST(LupineBuilderTest, ExtraOptionsRespected) {
  LupineBuilder builder;
  BuildOptions options;
  options.extra_options = {n::kHugetlbfs};
  auto unikernel = builder.BuildForApp("redis", options);
  ASSERT_TRUE(unikernel.ok());
  EXPECT_TRUE(unikernel->config.IsEnabled(n::kHugetlbfs));
}

TEST(LupineBuilderTest, UnknownAppFails) {
  LupineBuilder builder;
  EXPECT_FALSE(builder.BuildForApp("mystery").ok());
}

TEST(LupineBuilderTest, CustomManifestAndImage) {
  LupineBuilder builder;
  apps::AppManifest manifest;
  manifest.name = "hello-world";  // Reuse the registered behaviour.
  manifest.ready_line = "hello world";
  apps::ContainerImage image;
  image.app = "hello-world";
  image.name = "custom:latest";
  image.entrypoint = {"/bin/hello-world"};
  auto unikernel = builder.Build(manifest, image);
  ASSERT_TRUE(unikernel.ok());
  auto vm = unikernel->Launch(64 * kMiB);
  auto result = vm->BootAndRun();
  EXPECT_EQ(result.exit_code, 0);
}

}  // namespace
}  // namespace lupine::core

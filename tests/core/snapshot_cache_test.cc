// SnapshotCache retention and restore-failure quarantine. Pure cache-level
// tests — snapshots here are synthetic (no guest boots), so the suite runs
// everywhere including the tsan leg via the storm suite below.
#include "src/core/snapshot_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"

namespace lupine::core {
namespace {

guestos::Snapshot MakeSnapshot(const std::string& key, Bytes bytes = 8 * kMiB) {
  guestos::Snapshot snapshot;
  snapshot.key = key;
  snapshot.app = "synthetic";
  snapshot.memory = 128 * kMiB;
  snapshot.captured_bytes = bytes;
  snapshot.capture_ns = Millis(4);
  snapshot.restore_ns = Millis(2);
  snapshot.state_digest = 0x5eed;
  return snapshot;
}

TEST(SnapshotCacheTest, KeySeparatesItsComponents) {
  // "ab"+"c" vs "a"+"bc" must not collide.
  EXPECT_NE(SnapshotCache::Key("ab", "c", 1), SnapshotCache::Key("a", "bc", 1));
  EXPECT_NE(SnapshotCache::Key("a", "b", 64 * kMiB), SnapshotCache::Key("a", "b", 128 * kMiB));
}

TEST(SnapshotCacheTest, PutThenFindHitsAndCountsBytes) {
  SnapshotCache cache;
  cache.Put(MakeSnapshot("k1"));
  EXPECT_TRUE(cache.Contains("k1"));
  EXPECT_NE(cache.Find("k1"), nullptr);
  EXPECT_EQ(cache.Find("missing"), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.captures, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes_stored, 8 * kMiB);
}

TEST(SnapshotCacheTest, FirstCaptureWins) {
  SnapshotCache cache;
  auto first = cache.Put(MakeSnapshot("k1", 8 * kMiB));
  auto second = cache.Put(MakeSnapshot("k1", 16 * kMiB));
  // The duplicate is dropped; both callers hold the canonical snapshot.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().duplicate_captures, 1u);
  EXPECT_EQ(cache.stats().bytes_stored, 8 * kMiB);
}

TEST(SnapshotCacheTest, LruEvictsOldestUnpinnedWhenOverBudget) {
  SnapshotCache cache({.max_bytes = 20 * kMiB});
  cache.Put(MakeSnapshot("a", 8 * kMiB));
  cache.Put(MakeSnapshot("b", 8 * kMiB));
  // Touch "a" so "b" is the LRU victim when "c" overflows the budget.
  (void)cache.Find("a");
  cache.Put(MakeSnapshot("c", 8 * kMiB));
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().bytes_evicted, 8 * kMiB);
}

TEST(SnapshotCacheTest, PinnedEntriesSurviveEviction) {
  SnapshotCache cache({.max_bytes = 20 * kMiB});
  // Hold a reference to "a" — a restore in flight / parked warm guest.
  SnapshotCache::SnapshotPtr pinned = cache.Put(MakeSnapshot("a", 8 * kMiB));
  cache.Put(MakeSnapshot("b", 8 * kMiB));
  cache.Put(MakeSnapshot("c", 8 * kMiB));
  EXPECT_TRUE(cache.Contains("a"));   // Pinned: skipped by the evictor.
  EXPECT_FALSE(cache.Contains("b"));  // Oldest unpinned paid instead.
  EXPECT_GT(cache.stats().bytes_pinned, 0u);
}

TEST(SnapshotCacheTest, RestoreFailureDropsOnceThenPoisonsThenProbes) {
  SnapshotCache cache;
  Nanos now = 0;
  cache.set_quarantine_clock([&now] { return now; });
  cache.set_quarantine({.enabled = true,
                        .failures_per_strike = 1,
                        .recapture_limit = 1,
                        .poison_ttl = Millis(100)});

  cache.Put(MakeSnapshot("k"));
  // Strike 1: the entry is dropped so the next boot recaptures.
  cache.ReportRestoreFailure("k");
  EXPECT_FALSE(cache.Contains("k"));
  EXPECT_EQ(cache.stats().drops, 1u);
  EXPECT_EQ(cache.stats().poisoned, 0u);

  // Recapture, then strike 2: the key is poisoned and the suspect bytes are
  // dropped — finds deny fast until the TTL, so the fleet cold-boots.
  cache.Put(MakeSnapshot("k"));
  cache.ReportRestoreFailure("k");
  EXPECT_EQ(cache.stats().poisoned, 1u);
  EXPECT_FALSE(cache.Contains("k"));
  EXPECT_EQ(cache.Find("k"), nullptr);
  EXPECT_GE(cache.stats().denials, 1u);

  // A cold boot during the TTL recaptures; finds still deny fast.
  cache.Put(MakeSnapshot("k"));
  EXPECT_EQ(cache.Find("k"), nullptr);
  EXPECT_GE(cache.stats().denials, 2u);

  // TTL passes: the next find is the half-open probe and serves the
  // recaptured entry.
  now = Millis(150);
  SnapshotCache::SnapshotPtr probe = cache.Find("k");
  EXPECT_NE(probe, nullptr);
  // A failure during the half-open window re-poisons immediately.
  cache.ReportRestoreFailure("k");
  EXPECT_EQ(cache.stats().poisoned, 2u);
  EXPECT_EQ(cache.Find("k"), nullptr);

  // Recovery: TTL passes again, the recapture lands, and the probe restore
  // succeeds this time.
  now = Millis(300);
  cache.Put(MakeSnapshot("k"));
  EXPECT_NE(cache.Find("k"), nullptr);
}

TEST(SnapshotCacheTest, DisabledQuarantineNeverDropsOrDenies) {
  SnapshotCache cache;
  cache.set_quarantine({.enabled = false});
  cache.Put(MakeSnapshot("k"));
  for (int i = 0; i < 5; ++i) {
    cache.ReportRestoreFailure("k");
  }
  EXPECT_TRUE(cache.Contains("k"));
  EXPECT_NE(cache.Find("k"), nullptr);
  EXPECT_EQ(cache.stats().drops, 0u);
  EXPECT_EQ(cache.stats().poisoned, 0u);
}

TEST(SnapshotCacheTest, PublishesMetricsAndJournalEvents) {
  telemetry::MetricRegistry metrics;
  telemetry::Journal journal;
  SnapshotCache cache;
  cache.set_metrics(&metrics);
  cache.set_journal(&journal);

  auto snapshot = cache.Put(MakeSnapshot("k"));
  (void)cache.Find("k");
  (void)cache.Find("missing");
  cache.RecordRestore(*snapshot, true);
  cache.RecordRestore(*snapshot, false);

  EXPECT_EQ(metrics.GetCounter("snapshot.capture").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("snapshot.hit").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("snapshot.miss").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("snapshot.restore").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("snapshot.restore_failure").value(), 1u);
  cache.PublishMetrics(metrics);
  EXPECT_EQ(metrics.GetGauge("snapshotcache.entries").value(), 1);

  // Cache decisions are schedule-scoped: present in the full export only.
  const auto events = journal.Snapshot(true);
  bool saw_capture = false;
  bool saw_restore = false;
  for (const auto& event : events) {
    saw_capture = saw_capture || event.type == "snapshot-capture";
    saw_restore = saw_restore || event.type == "snapshot-restore";
  }
  EXPECT_TRUE(saw_capture);
  EXPECT_TRUE(saw_restore);
  EXPECT_EQ(journal.ExportJsonl(false), "");
}

TEST(QuarantineStormTest, ConcurrentSnapshotPutsFindsAndFailuresStayConsistent) {
  SnapshotCache cache({.max_bytes = 64 * kMiB});
  cache.set_quarantine({.enabled = true,
                        .failures_per_strike = 2,
                        .recapture_limit = 2,
                        .poison_ttl = Millis(1)});
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string(i % 5);
        cache.Put(MakeSnapshot(key, 4 * kMiB));
        SnapshotCache::SnapshotPtr found = cache.Find(key);
        if (found != nullptr) {
          cache.RecordRestore(*found, (i + t) % 7 != 0);
        }
        if ((i + t) % 13 == 0) {
          cache.ReportRestoreFailure(key);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.captures + stats.duplicate_captures, 8u * 200u);
  EXPECT_LE(stats.bytes_stored, 64 * kMiB);
  EXPECT_LE(stats.entries, 5u);
}

}  // namespace
}  // namespace lupine::core

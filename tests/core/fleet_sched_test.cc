// Fleet scheduling: the work-stealing deques and the pipelined provisioning
// DAG composed over RunFleetBoot. The FleetSchedStorm suite is Boot()-only —
// no fiber ever runs — so it is ThreadSanitizer-compatible and runs in the
// tsan CI leg (the filter selects it by suite name).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/fleet_boot.h"
#include "src/kconfig/presets.h"
#include "src/telemetry/export.h"
#include "src/util/fault.h"
#include "src/util/retry.h"

namespace lupine::core {
namespace {

// One cache for the schedule-comparison tests, quarantine off (these tests
// pin exact fault logs and makespans; quarantine dropping artifacts
// mid-test would fold rebuild noise into them) and warmed up front — ctest
// runs each test in its own process, so without the warmup boot the first
// run of every test would pay cold provisioning and skew the comparisons.
KernelCache& Cache() {
  static KernelCache* cache = [] {
    auto* owned = new KernelCache();
    owned->set_quarantine({.enabled = false});
    FleetBootOptions warmup;
    auto warm = RunFleetBoot(*owned, warmup);
    if (!warm.ok()) {
      ADD_FAILURE() << "cache warmup: " << warm.status().ToString();
    }
    return owned;
  }();
  return *cache;
}

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.backoff.initial = Millis(10);
  retry.backoff.jitter = 0.0;
  return retry;
}

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(FleetSchedStorm, FaultLogIdenticalAcrossWorkersAndSchedules) {
  // The replay-determinism contract, now across scheduling policies too:
  // each task's injector and retrier are functions of (plan, task index,
  // app), so the fault schedule cannot depend on which deque a task ran
  // from, whether it was stolen, or whether provisioning was split out.
  FaultPlan plan;
  plan.seed = 7;
  plan.Add({.site = FaultSite::kBootInitcall, .probability = 0.3});
  plan.Add({.site = FaultSite::kBootDecompress, .probability = 0.1});

  std::vector<std::string> reference_log;
  size_t reference_retries = 0;
  size_t reference_failures = 0;
  bool first = true;
  for (FleetSchedule schedule : {FleetSchedule::kStaticShards, FleetSchedule::kWorkStealing,
                                 FleetSchedule::kPipelined}) {
    for (size_t workers : {1u, 2u, 4u, 8u}) {
      FleetBootOptions options;
      options.workers = workers;
      options.rounds = 2;
      options.schedule = schedule;
      options.retry = FastRetry(4);
      options.fault_plan = &plan;
      auto result = RunFleetBoot(Cache(), options);
      ASSERT_TRUE(result.ok()) << "workers=" << workers;
      if (first) {
        reference_log = result->fault_log;
        reference_retries = result->retries;
        reference_failures = result->failures;
        first = false;
        EXPECT_FALSE(reference_log.empty());  // p=0.3 over 40 tasks fires.
        continue;
      }
      EXPECT_EQ(result->fault_log, reference_log) << "workers=" << workers;
      EXPECT_EQ(result->retries, reference_retries) << "workers=" << workers;
      EXPECT_EQ(result->failures, reference_failures) << "workers=" << workers;
    }
  }
}

TEST(FleetSchedStorm, StealingDrainsAroundASkewedApp) {
  // One rule wedges every postgres boot for an extra 630 virtual ms, ~10x a
  // normal boot. Static sharding strands those boots on their home shard
  // while siblings idle; stealing must beat it at 4 and 8 workers.
  FaultPlan plan;
  plan.Add({.site = FaultSite::kBootStall,
            .trigger_on = 1,
            .period = 1,
            .app = "postgres",
            .stall = Millis(630)});
  for (size_t workers : {4u, 8u}) {
    FleetBootOptions options;
    options.workers = workers;
    options.rounds = 2;
    options.fault_plan = &plan;

    options.schedule = FleetSchedule::kStaticShards;
    auto static_run = RunFleetBoot(Cache(), options);
    ASSERT_TRUE(static_run.ok());

    options.schedule = FleetSchedule::kWorkStealing;
    auto stealing_run = RunFleetBoot(Cache(), options);
    ASSERT_TRUE(stealing_run.ok());

    EXPECT_LT(stealing_run->virtual_makespan, static_run->virtual_makespan)
        << "workers=" << workers;
    EXPECT_GT(stealing_run->steals, 0u) << "workers=" << workers;
    // Same fleet, same faults: only the placement moved, never the work.
    EXPECT_EQ(stealing_run->virtual_boot_total, static_run->virtual_boot_total);
    EXPECT_EQ(stealing_run->boots, static_run->boots);
  }
}

TEST(FleetSchedStorm, WarmCachePipelinedEqualsMonolithicStealing) {
  // On a warm cache the pipelined DAG has no provisioning tasks and the
  // monolithic schedule has no flight groups: both reduce to the same boot
  // task set under the same deque policy, so the replay must be identical.
  for (size_t workers : {1u, 4u}) {
    FleetBootOptions options;
    options.workers = workers;

    options.schedule = FleetSchedule::kWorkStealing;
    auto monolithic = RunFleetBoot(Cache(), options);
    ASSERT_TRUE(monolithic.ok());

    options.schedule = FleetSchedule::kPipelined;
    auto pipelined = RunFleetBoot(Cache(), options);
    ASSERT_TRUE(pipelined.ok());

    EXPECT_EQ(pipelined->virtual_makespan, monolithic->virtual_makespan)
        << "workers=" << workers;
    EXPECT_EQ(pipelined->virtual_boot_total, monolithic->virtual_boot_total);
    EXPECT_EQ(pipelined->worker_virtual, monolithic->worker_virtual);
  }
}

TEST(FleetSchedStorm, ColdCachePipeliningBeatsMonolithicFlights) {
  // Fresh caches: the monolithic schedule hides cold provisioning inside
  // boot tasks as single-flight groups, so workers block on each other's
  // flights; the pipelined DAG splits the stages into their own tasks and
  // overlaps them. Same fleet, same modeled stage costs — pipelining must
  // strictly win.
  FleetBootOptions options;
  options.workers = 4;

  KernelCache monolithic_cache;
  monolithic_cache.set_quarantine({.enabled = false});
  options.schedule = FleetSchedule::kWorkStealing;
  auto monolithic = RunFleetBoot(monolithic_cache, options);
  ASSERT_TRUE(monolithic.ok()) << monolithic.status().ToString();

  KernelCache pipelined_cache;
  pipelined_cache.set_quarantine({.enabled = false});
  options.schedule = FleetSchedule::kPipelined;
  auto pipelined = RunFleetBoot(pipelined_cache, options);
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();

  EXPECT_LT(pipelined->virtual_makespan, monolithic->virtual_makespan);
  // Both points provision every artifact exactly once (single-flight /
  // one task per distinct stage key), so the caches end up identical.
  EXPECT_EQ(pipelined_cache.stats().builds, monolithic_cache.stats().builds);
  EXPECT_EQ(pipelined_cache.rootfs_stats().builds, monolithic_cache.rootfs_stats().builds);
  // And the total work charged is the same — only the overlap differs.
  EXPECT_EQ(pipelined->virtual_boot_total, monolithic->virtual_boot_total);
  EXPECT_EQ(pipelined->boots, kconfig::Top20AppNames().size());
}

TEST(FleetSchedStorm, WorkerTimelinesRenderAsChromeTrace) {
  // Scheduler telemetry: one timeline per worker, one span per boot task,
  // and the Chrome trace export carries one complete event per span with a
  // tid per worker row.
  FleetBootOptions options;
  options.workers = 4;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());

  const size_t fleet = kconfig::Top20AppNames().size();
  ASSERT_EQ(result->worker_timelines.size(), 4u);
  ASSERT_EQ(result->worker_queue_peak.size(), 4u);
  size_t spans = 0;
  for (const auto& timeline : result->worker_timelines) {
    spans += timeline.spans().size();
  }
  EXPECT_EQ(spans, fleet);

  const std::string trace = telemetry::ToChromeTrace(result->worker_timelines);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\": \"X\""), fleet);
  EXPECT_NE(trace.find("\"tid\": 0"), std::string::npos);
  EXPECT_EQ(trace.front(), '[');
  EXPECT_EQ(trace.back(), ']');
}

}  // namespace
}  // namespace lupine::core

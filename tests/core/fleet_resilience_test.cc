// Fleet resilience: retries, stage deadlines, quarantine and the circuit
// breaker composed over RunFleetBoot. The FleetResilienceStormTest suite is
// Boot()-only — no fiber ever runs — so it is ThreadSanitizer-compatible and
// runs in the tsan CI leg (the filter selects it by suite name).
// FleetResilienceTest exercises workload/supervised modes, which do run
// guest fibers and therefore stay out of the tsan leg.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/fleet_boot.h"
#include "src/kconfig/presets.h"
#include "src/telemetry/metrics.h"
#include "src/util/fault.h"
#include "src/util/retry.h"

namespace lupine::core {
namespace {

// One warm cache for the whole file, quarantine off: these tests pin exact
// retry/deadline counts, and quarantine dropping artifacts mid-test would
// fold rebuild noise into them. Quarantine gets its own fresh-cache tests.
KernelCache& Cache() {
  static KernelCache* cache = [] {
    auto* owned = new KernelCache();
    owned->set_quarantine({.enabled = false});
    return owned;
  }();
  return *cache;
}

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.backoff.initial = Millis(10);
  retry.backoff.jitter = 0.0;
  return retry;
}

TEST(FleetResilienceStormTest, RetriesRecoverCappedInitcallFaults) {
  // Every task's first two boots hit an initcall fault; the third is clean.
  // With 3 attempts the fleet must complete with zero lost boots.
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kBootInitcall, /*max_fires=*/2);
  FleetBootOptions options;
  options.workers = 4;
  options.retry = FastRetry(3);
  options.fault_plan = &plan;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const size_t fleet = kconfig::Top20AppNames().size();
  EXPECT_EQ(result->boots, fleet);
  EXPECT_EQ(result->failures, 0u);
  EXPECT_EQ(result->retries, 2 * fleet);
  EXPECT_EQ(result->launch_failures, 2 * fleet);
  EXPECT_EQ(result->recovered, fleet);
  EXPECT_GT(result->virtual_recovery_total, 0);
  // Every task fired twice and logged it.
  EXPECT_EQ(result->fault_log.size(), fleet);
}

TEST(FleetResilienceStormTest, TooFewAttemptsLoseTheFleet) {
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kBootInitcall, /*max_fires=*/2);
  FleetBootOptions options;
  options.apps = {"hello-world", "redis"};
  options.retry = FastRetry(2);  // One short: both fires burn both attempts.
  options.fault_plan = &plan;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->boots, 0u);
  EXPECT_EQ(result->failures, 2u);
  EXPECT_EQ(result->retries, 2u);
  EXPECT_EQ(result->recovered, 0u);
}

TEST(FleetResilienceStormTest, FaultLogIdenticalAcrossWorkerCounts) {
  // The replay-determinism contract: each task's injector and retrier are
  // seeded by the task index, so (plan, seed) fix every fault and every
  // retry whatever the sharding. Probabilistic rules are the acid test.
  FaultPlan plan;
  plan.seed = 99;
  plan.Add({.site = FaultSite::kBootInitcall, .probability = 0.3});
  plan.Add({.site = FaultSite::kBootDecompress, .probability = 0.1});

  std::vector<std::string> reference_log;
  size_t reference_retries = 0;
  size_t reference_failures = 0;
  bool first = true;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    FleetBootOptions options;
    options.workers = workers;
    options.rounds = 2;
    options.retry = FastRetry(4);
    options.fault_plan = &plan;
    auto result = RunFleetBoot(Cache(), options);
    ASSERT_TRUE(result.ok()) << "workers=" << workers;
    if (first) {
      reference_log = result->fault_log;
      reference_retries = result->retries;
      reference_failures = result->failures;
      first = false;
      EXPECT_FALSE(reference_log.empty());  // p=0.3 over 40 tasks fires.
      continue;
    }
    EXPECT_EQ(result->fault_log, reference_log) << "workers=" << workers;
    EXPECT_EQ(result->retries, reference_retries) << "workers=" << workers;
    EXPECT_EQ(result->failures, reference_failures) << "workers=" << workers;
  }
}

TEST(FleetResilienceStormTest, BootDeadlineKillsStalledBootAndRetries) {
  // One kBootStall fire wedges the first boot for 60 virtual seconds. The
  // deadline caps the damage at 1s, the retry boots clean.
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kBootStall, /*max_fires=*/1);
  FleetBootOptions options;
  options.apps = {"hello-world"};
  options.retry = FastRetry(2);
  options.deadlines.boot = Seconds(1);
  options.fault_plan = &plan;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->boots, 1u);
  EXPECT_EQ(result->failures, 0u);
  EXPECT_EQ(result->deadline_exceeded, 1u);
  EXPECT_EQ(result->retries, 1u);
  EXPECT_EQ(result->recovered, 1u);
  // The killed attempt is charged the deadline, never the 60s stall.
  EXPECT_LT(result->virtual_makespan, Seconds(5));
  EXPECT_GT(result->virtual_makespan, Seconds(1));
}

TEST(FleetResilienceStormTest, WithoutDeadlineTheStallIsPaidInFull) {
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kBootStall, /*max_fires=*/1);
  FleetBootOptions options;
  options.apps = {"hello-world"};
  options.fault_plan = &plan;  // Default retry (1 attempt), no deadlines.
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->boots, 1u);  // The stalled boot still completes...
  EXPECT_EQ(result->deadline_exceeded, 0u);
  EXPECT_GT(result->virtual_makespan, Seconds(60));  // ...60 virtual s later.
}

TEST(FleetResilienceStormTest, QuarantineCapsPoisonedRootfsBlastRadius) {
  // Every boot hits rootfs corruption. Uncontained, 3 rounds x 2 apps would
  // crash-loop 6 launches; rebuild-once-then-poison caps it at 2 per app.
  KernelCache cache;  // Fresh cache, quarantine on (the default policy).
  cache.set_quarantine_clock([] { return Nanos{0}; });  // TTL never expires.
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kRootfsCorrupt);
  FleetBootOptions options;
  options.apps = {"hello-world", "redis"};
  options.workers = 1;  // Serial: quarantine counts are exact.
  options.rounds = 3;
  options.fault_plan = &plan;
  auto result = RunFleetBoot(cache, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->boots, 0u);
  EXPECT_EQ(result->failures, 6u);          // Every task still fails...
  EXPECT_EQ(result->launch_failures, 4u);   // ...but only 2 per app launched.
  EXPECT_EQ(result->quarantined, 2u);       // Round 3 was denied up front.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.quarantine_rebuilds, 2u);
  EXPECT_EQ(stats.quarantine_poisoned, 2u);
  EXPECT_EQ(stats.quarantine_denials, 2u);
}

TEST(FleetResilienceStormTest, FailFastBreakerShedsLoadAfterTrip) {
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kBootInitcall);
  BreakerPolicy breaker_policy;
  breaker_policy.window = 8;
  breaker_policy.min_samples = 4;
  breaker_policy.trip_ratio = 1.0;
  breaker_policy.fail_fast = true;
  breaker_policy.probe_after = 0;  // Stays open: every later launch denied.
  CircuitBreaker breaker(breaker_policy);

  FleetBootOptions options;
  options.workers = 1;  // Serial: the denial set is deterministic.
  options.fault_plan = &plan;
  options.breaker = &breaker;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());

  const size_t fleet = kconfig::Top20AppNames().size();
  EXPECT_EQ(result->boots, 0u);
  EXPECT_EQ(result->failures, fleet);
  EXPECT_EQ(result->launch_failures, 4u);  // Trip after min_samples failures.
  EXPECT_EQ(result->breaker_denied, fleet - 4);
  EXPECT_EQ(result->breaker_trips, 1u);
  EXPECT_TRUE(breaker.tripped());
}

TEST(FleetResilienceStormTest, ResilienceCountersLandInTelemetry) {
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kBootInitcall, /*max_fires=*/1);
  telemetry::MetricRegistry registry;
  FleetBootOptions options;
  options.apps = {"hello-world"};
  options.retry = FastRetry(2);
  options.fault_plan = &plan;
  options.metrics = &registry;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(registry.GetGauge("fleet.retries").value(), 1);
  EXPECT_EQ(registry.GetGauge("fleet.launch_failures").value(), 1);
  EXPECT_EQ(registry.GetGauge("fleet.recovered").value(), 1);
  EXPECT_EQ(registry.GetGauge("fleet.deadline_exceeded").value(), 0);
  EXPECT_EQ(registry.GetGauge("fleet.quarantined").value(), 0);
}

TEST(FleetResilienceTest, PanickedWorkloadIsRetriedOnAFreshVm) {
  // An injected app fault panics the guest mid-workload (ring 0: the app IS
  // the kernel). The monitor's retry boots a fresh VM, which runs clean.
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kAppFault, /*max_fires=*/1);
  FleetBootOptions options;
  options.apps = {"hello-world"};
  options.run_workload = true;
  options.retry = FastRetry(2);
  options.fault_plan = &plan;
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->boots, 1u);
  EXPECT_EQ(result->failures, 0u);
  EXPECT_EQ(result->retries, 1u);
  EXPECT_EQ(result->launch_failures, 1u);
  EXPECT_EQ(result->recovered, 1u);
}

TEST(FleetResilienceTest, SupervisedModeTakesThePolicyAndCountsGiveups) {
  // A member that fails every boot under a hair-trigger crash-loop policy is
  // degraded immediately; the giveup counter records the abandonment.
  FaultPlan plan = FaultPlan{}.FireAlways(FaultSite::kBootInitcall);
  telemetry::MetricRegistry registry;
  FleetBootOptions options;
  options.apps = {"hello-world"};
  options.supervised = true;
  options.fault_plan = &plan;
  options.metrics = &registry;
  options.supervisor_policy.crash_loop_failures = 1;
  options.supervisor_policy.backoff_initial = Millis(1);
  auto result = RunFleetBoot(Cache(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->boots, 0u);
  EXPECT_EQ(result->failures, 1u);
  EXPECT_GE(result->launch_failures, 1u);
  EXPECT_EQ(registry.GetCounter("supervisor.giveup_total").value(), 1u);
}

}  // namespace
}  // namespace lupine::core

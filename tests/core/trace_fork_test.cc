// Tracing follows forked children: postgres's worker processes contribute
// events under their own pids.
#include <gtest/gtest.h>

#include "src/core/manifest_gen.h"
#include "src/kconfig/presets.h"
#include "tests/guestos/guest_fixture.h"

namespace lupine::core {
namespace {

using guestos::testing::GuestFixture;

TEST(TraceForkTest, ChildSyscallsAreAttributedToChildPids) {
  GuestFixture guest(kconfig::MicrovmConfig());
  guest.kernel->trace().set_enabled(true);
  int child_pid = 0;
  guest.RunInGuest([&](guestos::SyscallApi& sys) {
    auto pid = sys.Fork([](guestos::SyscallApi& child) -> int {
      (void)child.Getppid();
      (void)child.Getppid();
      return 0;
    });
    ASSERT_TRUE(pid.ok());
    child_pid = pid.value();
    (void)sys.Wait4(child_pid);
  });
  int child_events = 0;
  for (const auto& event : guest.kernel->trace().syscalls()) {
    if (event.pid == child_pid) {
      ++child_events;
    }
  }
  EXPECT_GE(child_events, 2);
}

TEST(TraceForkTest, PostgresTraceIncludesWorkerActivity) {
  auto traced = GenerateManifestFromTrace("postgres");
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  // Options from the postmaster's probes; the trace also recorded the four
  // background workers' nanosleep loops (events well beyond the main pid's).
  EXPECT_GT(traced->syscall_events, 20u);
}

TEST(TraceForkTest, FreeRunClientsAreNotTraced) {
  GuestFixture guest(kconfig::MicrovmConfig());
  guest.kernel->trace().set_enabled(true);
  workload::SpawnOptions options;
  options.free_run = true;
  guest.RunInGuest(
      [&](guestos::SyscallApi& sys) {
        for (int i = 0; i < 10; ++i) {
          (void)sys.Getppid();
        }
      },
      options);
  EXPECT_TRUE(guest.kernel->trace().syscalls().empty());
}

}  // namespace
}  // namespace lupine::core

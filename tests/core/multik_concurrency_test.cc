// Concurrency semantics of the single-flight KernelCache: no matter how many
// threads race GetOrBuild, each distinct kernel fingerprint is built exactly
// once and every caller sees the same stable artifact pointers. Run under
// ThreadSanitizer in CI (these tests boot no VMs — the fiber layer and tsan
// do not mix).
#include "src/core/multik.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "src/kconfig/presets.h"

namespace lupine::core {
namespace {

TEST(MultikConcurrencyTest, ParallelFleetBuildsEachKernelOnce) {
  constexpr size_t kThreads = 8;
  const std::vector<std::string>& apps = kconfig::Top20AppNames();
  KernelCache cache;

  std::atomic<bool> start{false};
  std::vector<std::map<std::string, KernelCache::ArtifactPtr>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load()) {
        std::this_thread::yield();
      }
      // Rotate the start index so threads collide on different apps first.
      for (size_t i = 0; i < apps.size(); ++i) {
        const std::string& app = apps[(i + t) % apps.size()];
        auto artifact = cache.GetOrBuild(app);
        ASSERT_TRUE(artifact.ok()) << app;
        seen[t][app] = *artifact;
      }
    });
  }
  start.store(true);
  for (auto& thread : threads) {
    thread.join();
  }

  auto stats = cache.stats();
  EXPECT_EQ(stats.apps, apps.size());
  EXPECT_EQ(stats.requests, kThreads * apps.size());
  // 5 zero-option apps share one kernel; every other option set is unique —
  // and single-flight means racing threads never build one twice.
  EXPECT_EQ(stats.distinct_kernels, 16u);
  EXPECT_EQ(stats.builds, stats.distinct_kernels);

  // Every thread got the same stable artifact (and kernel) pointer per app.
  for (size_t t = 1; t < kThreads; ++t) {
    for (const auto& [app, artifact] : seen[0]) {
      EXPECT_EQ(seen[t].at(app), artifact) << app;
      EXPECT_EQ(seen[t].at(app)->kernel, artifact->kernel) << app;
    }
  }
}

TEST(MultikConcurrencyTest, HammeringOneAppBuildsOnce) {
  constexpr size_t kThreads = 8;
  constexpr size_t kRequestsPerThread = 4;
  KernelCache cache;

  std::atomic<bool> start{false};
  std::vector<KernelCache::ArtifactPtr> artifacts(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load()) {
        std::this_thread::yield();
      }
      for (size_t i = 0; i < kRequestsPerThread; ++i) {
        auto artifact = cache.GetOrBuild("node");
        ASSERT_TRUE(artifact.ok());
        artifacts[t] = *artifact;
      }
    });
  }
  start.store(true);
  for (auto& thread : threads) {
    thread.join();
  }

  auto stats = cache.stats();
  EXPECT_EQ(stats.apps, 1u);
  EXPECT_EQ(stats.requests, kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.builds, 1u);
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(artifacts[t], artifacts[0]);
  }
}

TEST(MultikConcurrencyTest, FingerprintSharingAppsRaceToOneBuild) {
  // The five zero-option apps have distinct names but identical specialized
  // configurations. Requested concurrently (one thread each), the
  // fingerprint-level flight must still collapse them into a single build.
  const std::vector<std::string> runtimes = {"golang", "python", "openjdk", "php",
                                             "hello-world"};
  KernelCache cache;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  for (const auto& app : runtimes) {
    threads.emplace_back([&cache, &start, &app] {
      while (!start.load()) {
        std::this_thread::yield();
      }
      auto artifact = cache.GetOrBuild(app);
      ASSERT_TRUE(artifact.ok()) << app;
    });
  }
  start.store(true);
  for (auto& thread : threads) {
    thread.join();
  }

  auto stats = cache.stats();
  EXPECT_EQ(stats.apps, runtimes.size());
  EXPECT_EQ(stats.distinct_kernels, 1u);
  EXPECT_EQ(stats.builds, 1u);
}

TEST(MultikConcurrencyTest, MissingAppFailsEveryCallerWithoutPoisoning) {
  KernelCache cache;
  std::atomic<bool> start{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!start.load()) {
        std::this_thread::yield();
      }
      auto artifact = cache.GetOrBuild("no-such-app");
      if (!artifact.ok()) {
        failures.fetch_add(1);
      }
    });
  }
  start.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 4u);
  // A failure leaves no cached flight behind: a real app still works.
  EXPECT_TRUE(cache.GetOrBuild("redis").ok());
}

}  // namespace
}  // namespace lupine::core

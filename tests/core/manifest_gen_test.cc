#include "src/core/manifest_gen.h"

#include <gtest/gtest.h>

#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"

namespace lupine::core {
namespace {

namespace n = kconfig::names;

std::set<std::string> PresetSet(const std::string& app) {
  const auto& v = kconfig::AppExtraOptions(app);
  return std::set<std::string>(v.begin(), v.end());
}

TEST(ManifestGenTest, HelloWorldTraceNeedsNothing) {
  auto result = GenerateManifestFromTrace("hello-world");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->options.empty());
  EXPECT_GT(result->syscall_events, 0u);  // write/exit at minimum.
}

TEST(ManifestGenTest, RedisTraceMatchesTable3) {
  auto result = GenerateManifestFromTrace("redis");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->options, PresetSet("redis"));
  EXPECT_GT(result->distinct_syscalls, 10u);
}

class TraceMatchesTable3 : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceMatchesTable3, GeneratedOptionsEqualPreset) {
  auto result = GenerateManifestFromTrace(GetParam());
  ASSERT_TRUE(result.ok()) << GetParam() << ": " << result.status().ToString();
  EXPECT_EQ(result->options, PresetSet(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TopApps, TraceMatchesTable3,
                         ::testing::Values("nginx", "postgres", "node", "mysql", "memcached",
                                           "rabbitmq", "elasticsearch", "influxdb", "haproxy",
                                           "golang"));

TEST(ManifestGenTest, TraceAndSearchAgree) {
  // Dynamic analysis and the boot-loop search must converge on the same
  // configuration — two independent implementations of Section 4.1.
  for (const std::string app : {"traefik", "wordpress", "mongo"}) {
    auto traced = GenerateManifestFromTrace(app);
    ASSERT_TRUE(traced.ok()) << app;
    EXPECT_EQ(traced->options, PresetSet(app)) << app;
  }
}

TEST(ManifestGenTest, OptionsFromTraceMapsTable1) {
  guestos::TraceLog trace;
  trace.set_enabled(true);
  trace.RecordSyscall(1, kbuild::Sys::kFutex);
  trace.RecordSyscall(1, kbuild::Sys::kEpollWait);
  trace.RecordSyscall(1, kbuild::Sys::kRead);  // Ungated: ignored.
  trace.RecordFeature(1, guestos::TraceFeature::kAfInet6);
  auto options = OptionsFromTrace(trace);
  EXPECT_EQ(options, (std::set<std::string>{n::kFutex, n::kEpoll, n::kIpv6}));
}

TEST(ManifestGenTest, DisabledTraceRecordsNothing) {
  guestos::TraceLog trace;
  trace.RecordSyscall(1, kbuild::Sys::kFutex);
  trace.RecordFeature(1, guestos::TraceFeature::kAfUnix);
  EXPECT_TRUE(trace.syscalls().empty());
  EXPECT_TRUE(trace.features().empty());
}

TEST(ManifestGenTest, LupineGeneralCoversEveryTop20App) {
  for (const auto& app : kconfig::Top20AppNames()) {
    auto report = CheckLupineGeneralCoverage(PresetSet(app));
    EXPECT_TRUE(report.covered) << app;
  }
}

TEST(ManifestGenTest, CoverageDetectsMissingOptions) {
  auto report = CheckLupineGeneralCoverage({n::kFutex, n::kSelinux});
  EXPECT_FALSE(report.covered);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0], n::kSelinux);
}

TEST(ManifestGenTest, UnknownAppRejected) {
  EXPECT_FALSE(GenerateManifestFromTrace("never-heard-of-it").ok());
}

}  // namespace
}  // namespace lupine::core

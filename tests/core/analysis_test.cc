#include "src/core/analysis.h"

#include <gtest/gtest.h>

namespace lupine::core {
namespace {

TEST(AnalysisTest, Table3HasTwentyRows) {
  auto rows = Table3Rows();
  ASSERT_EQ(rows.size(), 20u);
  EXPECT_EQ(rows.front().name, "nginx");
  EXPECT_EQ(rows.front().options_atop_base, 13u);
  EXPECT_EQ(rows.back().name, "elasticsearch");
  EXPECT_EQ(rows.back().options_atop_base, 12u);
}

TEST(AnalysisTest, GrowthCurveMonotonicFrom13To19) {
  auto curve = OptionGrowthCurve();
  ASSERT_EQ(curve.size(), 20u);
  EXPECT_EQ(curve.front(), 13u);  // nginx alone.
  EXPECT_EQ(curve.back(), 19u);   // the full union (Fig. 5).
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
}

TEST(AnalysisTest, GrowthCurveFlattens) {
  // The second half of the curve adds far fewer options than the first
  // (Fig. 5's flattening).
  auto curve = OptionGrowthCurve();
  size_t first_half = curve[9] - 0;
  size_t second_half = curve[19] - curve[9];
  EXPECT_GT(first_half, 3 * second_half);
}

TEST(AnalysisTest, UnionIs19) {
  EXPECT_EQ(UnionOfAppOptions().size(), 19u);
}

}  // namespace
}  // namespace lupine::core

#include "src/workload/app_bench.h"

#include <gtest/gtest.h>

#include "src/unikernels/linux_system.h"

namespace lupine::workload {
namespace {

using unikernels::LinuxSystem;

TEST(AppBenchTest, RedisBenchmarkCompletesRequests) {
  LinuxSystem system(unikernels::LupineGeneralSpec());
  auto vm = system.MakeVm("redis", 512 * kMiB);
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE(BootAppServer(**vm, "Ready to accept connections"));
  ThroughputResult get = RunRedisBenchmark(**vm, /*set_workload=*/false, /*ops=*/400);
  EXPECT_EQ(get.errors, 0u);
  EXPECT_EQ(get.completed, 400u);
  EXPECT_GT(get.requests_per_sec, 0);
}

TEST(AppBenchTest, SetWorkloadAlsoWorks) {
  LinuxSystem system(unikernels::LupineGeneralSpec());
  auto vm = system.MakeVm("redis", 512 * kMiB);
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE(BootAppServer(**vm, "Ready to accept connections"));
  ThroughputResult set = RunRedisBenchmark(**vm, /*set_workload=*/true, /*ops=*/400);
  EXPECT_EQ(set.errors, 0u);
  EXPECT_GT(set.requests_per_sec, 0);
}

TEST(AppBenchTest, ApacheBenchConnAndSession) {
  LinuxSystem system(unikernels::LupineGeneralSpec());
  auto vm = system.MakeVm("nginx", 512 * kMiB);
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE(BootAppServer(**vm, "start worker processes"));
  ThroughputResult conn = RunApacheBench(**vm, /*total_requests=*/300, /*requests_per_conn=*/1);
  EXPECT_EQ(conn.errors, 0u);
  EXPECT_EQ(conn.completed, 300u);

  ThroughputResult sess = RunApacheBench(**vm, /*total_requests=*/300,
                                         /*requests_per_conn=*/100);
  EXPECT_EQ(sess.errors, 0u);
  // Keep-alive amortizes connection setup: higher throughput.
  EXPECT_GT(sess.requests_per_sec, conn.requests_per_sec);
}

TEST(AppBenchTest, BootAppServerFailsOnWrongKernel) {
  LinuxSystem system(unikernels::LupineSpec());
  // Building redis's kernel but booting nginx's rootfs would be a config
  // mismatch; here we test the plain failure path: hello is not a server.
  auto vm = system.MakeVm("hello-world", 512 * kMiB);
  ASSERT_TRUE(vm.ok());
  EXPECT_FALSE(BootAppServer(**vm, "Ready to accept connections"));
}

TEST(AppBenchTest, ClientsAreFreeOfGuestCharge) {
  // Free-running clients must not advance the guest clock while the server
  // is idle: total elapsed should reflect server-side work only. We verify
  // by checking throughput does not collapse when the client count rises.
  LinuxSystem system(unikernels::LupineGeneralSpec());
  auto vm_few = system.MakeVm("redis", 512 * kMiB);
  ASSERT_TRUE(vm_few.ok());
  ASSERT_TRUE(BootAppServer(**vm_few, "Ready to accept connections"));
  double few = RunRedisBenchmark(**vm_few, false, 400, /*connections=*/2).requests_per_sec;

  auto vm_many = system.MakeVm("redis", 512 * kMiB);
  ASSERT_TRUE(vm_many.ok());
  ASSERT_TRUE(BootAppServer(**vm_many, "Ready to accept connections"));
  double many = RunRedisBenchmark(**vm_many, false, 400, /*connections=*/16).requests_per_sec;
  EXPECT_GT(many, few * 0.5);
}

}  // namespace
}  // namespace lupine::workload

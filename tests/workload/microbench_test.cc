// The KML-amortization and control-process helpers.
#include <gtest/gtest.h>

#include "src/unikernels/linux_system.h"
#include "src/workload/control_procs.h"
#include "src/workload/kml_bench.h"

namespace lupine::workload {
namespace {

std::unique_ptr<vmm::Vm> BenchVm(const unikernels::LinuxVariantSpec& spec) {
  unikernels::LinuxSystem system(spec);
  auto vm = system.MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  EXPECT_TRUE(vm.ok());
  auto owned = std::move(vm.value());
  EXPECT_TRUE(owned->Boot().ok());
  owned->kernel().Run();
  return owned;
}

TEST(MicrobenchTest, BusyWorkRaisesPerCallTime) {
  auto vm = BenchVm(unikernels::LupineGeneralSpec());
  double at0 = MeasureNullWithWorkUs(*vm, 0, 500);
  auto vm2 = BenchVm(unikernels::LupineGeneralSpec());
  double at100 = MeasureNullWithWorkUs(*vm2, 100, 500);
  EXPECT_GT(at100, at0 + 0.1);  // 100 iterations at ~2ns each.
}

TEST(MicrobenchTest, KmlImprovementDecaysMonotonically) {
  std::vector<double> improvements;
  for (int iterations : {0, 40, 160}) {
    auto kml = BenchVm(unikernels::LupineGeneralSpec());
    auto nokml = BenchVm(unikernels::LupineGeneralNokmlSpec());
    double a = MeasureNullWithWorkUs(*kml, iterations, 500);
    double b = MeasureNullWithWorkUs(*nokml, iterations, 500);
    improvements.push_back(1.0 - a / b);
  }
  EXPECT_GT(improvements[0], improvements[1]);
  EXPECT_GT(improvements[1], improvements[2]);
  EXPECT_GT(improvements[0], 0.30);  // ~40% at zero work.
  EXPECT_LT(improvements[2], 0.07);  // <5% at 160 iterations.
}

TEST(MicrobenchTest, ControlProcessesAreInvisible) {
  auto vm_none = BenchVm(unikernels::LupineGeneralSpec());
  auto base = MeasureWithControlProcs(*vm_none, 0);
  auto vm_many = BenchVm(unikernels::LupineGeneralSpec());
  auto many = MeasureWithControlProcs(*vm_many, 128);
  EXPECT_NEAR(many.null_us, base.null_us, 0.002);
}

TEST(MicrobenchTest, ControlProcessesStayAliveButBlocked) {
  auto vm = BenchVm(unikernels::LupineGeneralSpec());
  size_t before = vm->kernel().ProcessCount();
  MeasureWithControlProcs(*vm, 32);
  EXPECT_GE(vm->kernel().ProcessCount(), before + 32);
}

}  // namespace
}  // namespace lupine::workload

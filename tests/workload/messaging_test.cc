#include "src/workload/perf_messaging.h"

#include <gtest/gtest.h>

#include "src/unikernels/linux_system.h"

namespace lupine::workload {
namespace {

std::unique_ptr<vmm::Vm> GeneralVm() {
  unikernels::LinuxSystem system(unikernels::LupineGeneralSpec());
  auto vm = system.MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  EXPECT_TRUE(vm.ok());
  auto owned = std::move(vm.value());
  EXPECT_TRUE(owned->Boot().ok());
  owned->kernel().Run();
  return owned;
}

TEST(MessagingTest, ThreadModeCompletes) {
  auto vm = GeneralVm();
  MessagingConfig config;
  config.groups = 1;
  config.senders_per_group = 4;
  config.receivers_per_group = 4;
  config.messages_per_pair = 10;
  config.use_processes = false;
  Nanos elapsed = RunPerfMessaging(*vm, config);
  EXPECT_GT(elapsed, 0);
}

TEST(MessagingTest, ProcessModeCompletes) {
  auto vm = GeneralVm();
  MessagingConfig config;
  config.groups = 1;
  config.senders_per_group = 4;
  config.receivers_per_group = 4;
  config.messages_per_pair = 10;
  config.use_processes = true;
  EXPECT_GT(RunPerfMessaging(*vm, config), 0);
}

TEST(MessagingTest, MoreGroupsTakeLonger) {
  MessagingConfig config;
  config.senders_per_group = 4;
  config.receivers_per_group = 4;
  config.messages_per_pair = 10;
  config.use_processes = true;

  auto vm1 = GeneralVm();
  config.groups = 1;
  Nanos one = RunPerfMessaging(*vm1, config);
  auto vm4 = GeneralVm();
  config.groups = 4;
  Nanos four = RunPerfMessaging(*vm4, config);
  EXPECT_GT(four, 2 * one);
}

TEST(MessagingTest, ProcessesWithinAFewPercentOfThreads) {
  // Section 5 / Fig. 12: process switching is not meaningfully slower than
  // thread switching (max +3%; sometimes faster).
  MessagingConfig config;
  config.groups = 2;
  config.senders_per_group = 10;
  config.receivers_per_group = 10;
  config.messages_per_pair = 10;

  auto vm_threads = GeneralVm();
  config.use_processes = false;
  Nanos threads = RunPerfMessaging(*vm_threads, config);

  auto vm_procs = GeneralVm();
  config.use_processes = true;
  Nanos procs = RunPerfMessaging(*vm_procs, config);

  double delta = (static_cast<double>(procs) - static_cast<double>(threads)) /
                 static_cast<double>(threads);
  EXPECT_LT(delta, 0.08);
  EXPECT_GT(delta, -0.25);
}

}  // namespace
}  // namespace lupine::workload

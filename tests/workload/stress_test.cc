#include "src/workload/stress.h"

#include <gtest/gtest.h>

#include "src/apps/builtin.h"
#include "src/apps/rootfs_builder.h"
#include "src/kbuild/builder.h"
#include "src/kconfig/option_names.h"
#include "src/kconfig/presets.h"
#include "src/kconfig/resolver.h"
#include "src/unikernels/linux_system.h"

namespace lupine::workload {
namespace {

std::unique_ptr<vmm::Vm> VmWithSmp(bool smp) {
  kconfig::Config config = kconfig::LupineGeneral();
  if (smp) {
    kconfig::Resolver resolver(kconfig::OptionDb::Linux40());
    EXPECT_TRUE(resolver.Enable(config, kconfig::names::kSmp).ok());
  }
  kbuild::ImageBuilder builder;
  auto image = builder.Build(config);
  EXPECT_TRUE(image.ok());
  apps::RegisterBuiltinApps();
  vmm::VmSpec spec;
  spec.monitor = vmm::Firecracker();
  spec.image = image.take();
  spec.rootfs = apps::BuildBenchRootfs(false);
  spec.memory = 512 * kMiB;
  auto vm = std::make_unique<vmm::Vm>(std::move(spec));
  EXPECT_TRUE(vm->Boot().ok());
  vm->kernel().Run();
  return vm;
}

TEST(StressTest, FutexStressCompletes) {
  auto vm = VmWithSmp(false);
  Nanos elapsed = RunFutexStress(*vm, /*workers=*/4, /*rounds=*/50);
  EXPECT_GT(elapsed, 0);
  EXPECT_FALSE(vm->kernel().console().Contains("unexpected error code"));
}

TEST(StressTest, SemStressCompletes) {
  auto vm = VmWithSmp(false);
  EXPECT_GT(RunSemStress(*vm, 4, 50), 0);
}

TEST(StressTest, MakeJobWritesObjects) {
  auto vm = VmWithSmp(false);
  EXPECT_GT(RunMakeJob(*vm, /*jobs=*/4, /*units=*/20), 0);
  EXPECT_TRUE(vm->kernel().vfs().Exists("/tmp/obj_0.o"));
  EXPECT_TRUE(vm->kernel().vfs().Exists("/tmp/obj_19.o"));
}

TEST(StressTest, SmpOverheadWithinPaperBounds) {
  // Section 5: futex stress <=8%, sem_posix <=3%, make <=3% on one VCPU.
  auto uni = VmWithSmp(false);
  auto smp = VmWithSmp(true);
  Nanos futex_uni = RunFutexStress(*uni, 8, 60);
  Nanos futex_smp = RunFutexStress(*smp, 8, 60);
  double overhead = (static_cast<double>(futex_smp) - static_cast<double>(futex_uni)) /
                    static_cast<double>(futex_uni);
  EXPECT_GE(overhead, 0.0);
  EXPECT_LE(overhead, 0.10);
}

TEST(StressTest, SemOverheadSmallerThanFutex) {
  auto uni = VmWithSmp(false);
  auto smp = VmWithSmp(true);
  Nanos sem_uni = RunSemStress(*uni, 8, 60);
  Nanos sem_smp = RunSemStress(*smp, 8, 60);
  double overhead = (static_cast<double>(sem_smp) - static_cast<double>(sem_uni)) /
                    static_cast<double>(sem_uni);
  EXPECT_LE(overhead, 0.06);
}

}  // namespace
}  // namespace lupine::workload

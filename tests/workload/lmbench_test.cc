#include "src/workload/lmbench.h"

#include <gtest/gtest.h>

#include "src/unikernels/linux_system.h"

namespace lupine::workload {
namespace {

using unikernels::LinuxSystem;

std::unique_ptr<vmm::Vm> BenchVm(const unikernels::LinuxVariantSpec& spec) {
  LinuxSystem system(spec);
  auto vm = system.MakeVm("hello-world", 512 * kMiB, /*bench_rootfs=*/true);
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  auto owned = std::move(vm.value());
  EXPECT_TRUE(owned->Boot().ok());
  owned->kernel().Run();
  return owned;
}

TEST(LmbenchTest, SyscallLatenciesPositiveAndOrdered) {
  auto microvm = BenchVm(unikernels::MicrovmSpec());
  auto lupine = BenchVm(unikernels::LupineSpec());
  SyscallLatencies m = MeasureSyscallLatency(*microvm);
  SyscallLatencies l = MeasureSyscallLatency(*lupine);
  EXPECT_GT(m.null_us, 0);
  EXPECT_GT(m.read_us, m.null_us);  // read does more work than getppid.
  EXPECT_LT(l.null_us, m.null_us);
  EXPECT_LT(l.write_us, m.write_us);
}

TEST(LmbenchTest, CtxSwitchGrowsWithWorkingSet) {
  auto vm = BenchVm(unikernels::LupineGeneralSpec());
  double zero_k = MeasureCtxSwitchUs(*vm, 2, 0, 100);
  double sixty_four_k = MeasureCtxSwitchUs(*vm, 2, 64, 100);
  EXPECT_GT(zero_k, 0);
  EXPECT_GT(sixty_four_k, zero_k);
}

TEST(LmbenchTest, PipeLatencyCheaperThanUnix) {
  auto vm = BenchVm(unikernels::LupineGeneralSpec());
  double pipe = MeasurePipeLatencyUs(*vm, /*af_unix=*/false, 100);
  double af_unix = MeasurePipeLatencyUs(*vm, /*af_unix=*/true, 100);
  EXPECT_GT(pipe, 0);
  EXPECT_GT(af_unix, pipe * 0.8);  // AF_UNIX is at least comparable.
}

TEST(LmbenchTest, TcpConnCostsMoreThanRoundTrip) {
  auto vm = BenchVm(unikernels::LupineGeneralSpec());
  double rtt = MeasureTcpLatencyUs(*vm, 100);
  double conn = MeasureTcpConnUs(*vm, 100);
  EXPECT_GT(conn, rtt * 0.8);
  EXPECT_GT(rtt, 0);
}

TEST(LmbenchTest, FullSuiteHasAllSections) {
  auto vm = BenchVm(unikernels::LupineGeneralSpec());
  auto rows = RunLmbenchSuite(*vm);
  EXPECT_GE(rows.size(), 30u);
  std::set<std::string> sections;
  for (const auto& row : rows) {
    sections.insert(row.section);
    if (!row.bandwidth) {
      EXPECT_GE(row.value, 0) << row.name;
    } else {
      EXPECT_GT(row.value, 0) << row.name;
    }
  }
  EXPECT_EQ(sections.size(), 5u);
}

TEST(LmbenchTest, LupineGeneralBeatsMicrovmOnMostLatencies) {
  auto microvm_vm = BenchVm(unikernels::MicrovmSpec());
  auto lupine_vm = BenchVm(unikernels::LupineGeneralNokmlSpec());
  auto microvm = RunLmbenchSuite(*microvm_vm);
  auto lupine = RunLmbenchSuite(*lupine_vm);
  ASSERT_EQ(microvm.size(), lupine.size());
  int lupine_wins = 0;
  int comparisons = 0;
  for (size_t i = 0; i < microvm.size(); ++i) {
    if (microvm[i].bandwidth) {
      continue;
    }
    ++comparisons;
    if (lupine[i].value <= microvm[i].value) {
      ++lupine_wins;
    }
  }
  // Table 5: lupine-general is faster on essentially every latency row.
  EXPECT_GT(lupine_wins * 10, comparisons * 8);
}

}  // namespace
}  // namespace lupine::workload

// Cross-variant performance properties: orderings the paper's thesis
// depends on must hold for every app-specialized kernel.
#include <gtest/gtest.h>

#include "src/unikernels/linux_system.h"
#include "src/workload/lmbench.h"

namespace lupine::workload {
namespace {

using unikernels::LinuxSystem;

class PerAppVariantProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(PerAppVariantProperty, ImageOrderingHoldsForEveryApp) {
  LinuxSystem microvm(unikernels::MicrovmSpec());
  LinuxSystem lupine(unikernels::LupineSpec());
  LinuxSystem tiny(unikernels::LupineTinySpec());
  auto m = microvm.KernelImageSize(GetParam());
  auto l = lupine.KernelImageSize(GetParam());
  auto t = tiny.KernelImageSize(GetParam());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(t.ok());
  EXPECT_LT(t.value(), l.value()) << GetParam();
  EXPECT_LT(l.value(), m.value()) << GetParam();
  double ratio = static_cast<double>(l.value()) / static_cast<double>(m.value());
  EXPECT_GT(ratio, 0.20) << GetParam();
  EXPECT_LT(ratio, 0.40) << GetParam();
}

TEST_P(PerAppVariantProperty, BootOrderingHoldsForEveryApp) {
  LinuxSystem microvm(unikernels::MicrovmSpec());
  LinuxSystem lupine(unikernels::LupineNokmlSpec());
  auto m = microvm.BootTime(GetParam());
  auto l = lupine.BootTime(GetParam());
  ASSERT_TRUE(m.ok()) << GetParam();
  ASSERT_TRUE(l.ok()) << GetParam();
  EXPECT_LT(l.value(), m.value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Apps, PerAppVariantProperty,
                         ::testing::Values("hello-world", "redis", "nginx", "postgres",
                                           "memcached", "node", "elasticsearch"));

TEST(VariantPropertyTest, SyscallLatencyStrictOrdering) {
  // microVM > lupine-nokml > lupine(KML) on every lmbench column.
  LinuxSystem microvm(unikernels::MicrovmSpec());
  LinuxSystem nokml(unikernels::LupineNokmlSpec());
  LinuxSystem kml(unikernels::LupineSpec());
  auto m = microvm.SyscallLatency();
  auto n = nokml.SyscallLatency();
  auto k = kml.SyscallLatency();
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(k.ok());
  EXPECT_GT(m->null_us, n->null_us);
  EXPECT_GT(n->null_us, k->null_us);
  EXPECT_GT(m->read_us, n->read_us);
  EXPECT_GT(n->read_us, k->read_us);
  EXPECT_GT(m->write_us, n->write_us);
  EXPECT_GT(n->write_us, k->write_us);
}

TEST(VariantPropertyTest, GeneralEqualsAppSpecificOnMicrobenchmarks) {
  // "we found no differences in system call latency between the
  // application-specific and general variants" (Section 4.5).
  LinuxSystem app_specific(unikernels::LupineSpec());
  LinuxSystem general(unikernels::LupineGeneralSpec());
  auto a = app_specific.SyscallLatency();
  auto g = general.SyscallLatency();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(a->null_us, g->null_us, 0.002);
  EXPECT_NEAR(a->read_us, g->read_us, 0.002);
  EXPECT_NEAR(a->write_us, g->write_us, 0.002);
}

TEST(VariantPropertyTest, TinyTradesThroughputNotBoot) {
  LinuxSystem normal(unikernels::LupineSpec());
  LinuxSystem tiny(unikernels::LupineTinySpec());
  auto n_rps = normal.RedisThroughput(false);
  auto t_rps = tiny.RedisThroughput(false);
  ASSERT_TRUE(n_rps.ok());
  ASSERT_TRUE(t_rps.ok());
  EXPECT_LT(t_rps.value(), n_rps.value());
  // Within 10 points of each other (Table 4).
  EXPECT_GT(t_rps.value(), n_rps.value() * 0.88);

  auto n_boot = normal.BootTime("redis");
  auto t_boot = tiny.BootTime("redis");
  ASSERT_TRUE(n_boot.ok());
  ASSERT_TRUE(t_boot.ok());
  double boot_ratio = static_cast<double>(t_boot.value()) / static_cast<double>(n_boot.value());
  EXPECT_GT(boot_ratio, 0.9);
  EXPECT_LT(boot_ratio, 1.15);
}

}  // namespace
}  // namespace lupine::workload

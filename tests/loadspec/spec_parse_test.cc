#include "src/loadspec/parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/loadspec/actions.h"

namespace lupine::loadspec {
namespace {

std::vector<std::string> Lint(const std::string& text) {
  std::vector<SpecDiagnostic> diags;
  LintScenario(text, &diags);
  std::vector<std::string> out;
  out.reserve(diags.size());
  for (const SpecDiagnostic& diag : diags) {
    out.push_back(diag.ToString());
  }
  return out;
}

bool HasDiag(const std::vector<std::string>& diags, const std::string& needle) {
  for (const std::string& diag : diags) {
    if (diag.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

const char kValidSpec[] = R"({
  "name": "demo",
  "description": "two groups over a pipe",
  "seed": 9,
  "vms": [{"name": "main", "variant": "lupine-general", "app": "hello-world", "memory_mb": 128}],
  "groups": [
    {"name": "ping", "workers": 2, "iterations": 5, "period_us": 100,
     "actions": [{"op": "send", "channel": "pp", "bytes": 8},
                 {"op": "recv", "channel": "pp", "bytes": 8}]},
    {"name": "pong", "workers": 2, "mode": "thread", "iterations": 5,
     "actions": [{"op": "recv", "channel": "pp", "bytes": 8},
                 {"op": "send", "channel": "pp", "bytes": 8},
                 {"op": "syscall_mix", "count": 3, "mix": {"getppid": 1, "read": 2}}]}
  ],
  "channels": [{"name": "pp", "kind": "pipe", "from": "ping", "to": "pong"}],
  "phases": [{"name": "ramp", "duration_ms": 2, "intensity": 2.0}],
  "expect": [{"metric": "iterations", "group": "ping", "min": 10},
             {"metric": "blocked", "max": 0}]
})";

TEST(SpecParseTest, ParsesValidSpecIntoModel) {
  std::vector<SpecDiagnostic> diags;
  auto spec = ParseScenario(kValidSpec, &diags);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(spec->name, "demo");
  EXPECT_EQ(spec->seed, 9u);
  ASSERT_EQ(spec->vms.size(), 1u);
  EXPECT_EQ(spec->vms[0].variant, "lupine-general");
  EXPECT_EQ(spec->vms[0].memory, 128 * kMiB);
  ASSERT_EQ(spec->groups.size(), 2u);
  EXPECT_EQ(spec->groups[0].workers, 2);
  EXPECT_FALSE(spec->groups[0].threads);
  EXPECT_EQ(spec->groups[0].period, Micros(100));
  EXPECT_TRUE(spec->groups[1].threads);
  ASSERT_EQ(spec->groups[1].actions.size(), 3u);
  const ActionSpec& mix = spec->groups[1].actions[2];
  EXPECT_EQ(mix.op, "syscall_mix");
  ASSERT_EQ(mix.mix.size(), 2u);
  EXPECT_EQ(mix.mix[0].first, "getppid");
  EXPECT_DOUBLE_EQ(mix.mix[1].second, 2.0);
  ASSERT_EQ(spec->channels.size(), 1u);
  EXPECT_EQ(spec->channels[0].kind, ChannelKind::kPipe);
  ASSERT_EQ(spec->phases.size(), 1u);
  EXPECT_EQ(spec->phases[0].duration, Millis(2));
  ASSERT_EQ(spec->expect.size(), 2u);
  EXPECT_TRUE(spec->expect[0].has_min);
  EXPECT_FALSE(spec->expect[0].has_max);
}

TEST(SpecParseTest, DefaultsVmWhenAbsent) {
  auto spec = ParseScenario(
      R"({"name": "d", "groups": [{"name": "g", "actions": [{"op": "yield"}]}]})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->vms.size(), 1u);
  EXPECT_EQ(spec->vms[0].name, "main");
  EXPECT_EQ(spec->vms[0].variant, "lupine-general");
  EXPECT_EQ(spec->groups[0].vm, "main");
}

TEST(SpecParseTest, SyntaxErrorsAreLinePrecise) {
  auto diags = Lint("{\n  \"name\": \"x\",\n  \"groups\": [,]\n}");
  ASSERT_EQ(diags.size(), 1u);
  // The stray comma sits at line 3, column 14.
  EXPECT_EQ(diags[0], "3:14: unexpected character");
}

TEST(SpecParseTest, DuplicateKeysAreRejected) {
  auto diags = Lint(
      R"({"name": "d", "name": "e",
          "groups": [{"name": "g", "actions": [{"op": "yield"}]}]})");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(HasDiag(diags, "duplicate key \"name\"")) << diags[0];
}

TEST(SpecParseTest, FlagsUnknownKeys) {
  auto diags = Lint(R"({
  "name": "d",
  "grps": [],
  "groups": [{"name": "g", "wrkrs": 2, "actions": [{"op": "yield", "bogus": 1}]}]
})");
  EXPECT_TRUE(HasDiag(diags, "unknown key \"grps\" in scenario"));
  EXPECT_TRUE(HasDiag(diags, "unknown key \"wrkrs\" in group \"g\""));
  EXPECT_TRUE(HasDiag(diags, "unknown key \"bogus\" for action \"yield\""));
  // The group-level diagnostic lands on line 4 where "wrkrs" appears.
  EXPECT_TRUE(HasDiag(diags, "4:")) << diags.size();
}

TEST(SpecParseTest, FlagsUnknownOpsVariantsAndMetrics) {
  auto diags = Lint(R"({
  "name": "d",
  "vms": [{"variant": "osv"}],
  "groups": [{"name": "g", "actions": [{"op": "teleport"}]}],
  "expect": [{"metric": "vibes", "min": 1}]
})");
  EXPECT_TRUE(HasDiag(diags, "unknown variant \"osv\""));
  EXPECT_TRUE(HasDiag(diags, "unknown action op \"teleport\""));
  EXPECT_TRUE(HasDiag(diags, "unknown metric \"vibes\""));
}

TEST(SpecParseTest, FlagsDanglingReferences) {
  auto diags = Lint(R"({
  "name": "d",
  "groups": [
    {"name": "a", "actions": [{"op": "send", "channel": "missing"}]},
    {"name": "b", "actions": [{"op": "recv", "channel": "pp"}]},
    {"name": "c", "actions": [{"op": "yield"}]}
  ],
  "channels": [{"name": "pp", "kind": "pipe", "from": "a", "to": "ghost"}]
})");
  EXPECT_TRUE(HasDiag(diags, "dangling group reference \"ghost\""));
  EXPECT_TRUE(HasDiag(diags, "references undeclared channel \"missing\""));
  EXPECT_TRUE(HasDiag(diags, "group \"b\" is not an endpoint of channel \"pp\""));
}

TEST(SpecParseTest, FlagsZeroRatePhases) {
  auto diags = Lint(R"({
  "name": "d",
  "groups": [{"name": "g", "actions": [{"op": "yield"}]}],
  "phases": [{"name": "dead", "duration_ms": 5, "intensity": 0}]
})");
  EXPECT_TRUE(HasDiag(diags, "zero-rate phase \"dead\""));
}

TEST(SpecParseTest, FlagsBadMixes) {
  auto diags = Lint(R"({
  "name": "d",
  "groups": [{"name": "g", "actions": [
    {"op": "syscall_mix", "count": 1, "mix": {"getppid": 0, "frobnicate": 1}},
    {"op": "syscall_mix", "count": 1}
  ]}]
})");
  EXPECT_TRUE(HasDiag(diags, "unknown mix syscall \"frobnicate\""));
  EXPECT_TRUE(HasDiag(diags, "all mix weights are zero"));
  EXPECT_TRUE(HasDiag(diags, "requires a non-empty \"mix\" object"));
}

TEST(SpecParseTest, FlagsRangeAndRequirementViolations) {
  auto diags = Lint(R"({
  "name": "d",
  "groups": [
    {"name": "g", "workers": 0, "actions": [
      {"op": "compute", "us": -5},
      {"op": "send"}
    ]}
  ],
  "expect": [{"metric": "blocked"}, {"metric": "elapsed_ms", "min": 9, "max": 1}]
})");
  EXPECT_TRUE(HasDiag(diags, "\"workers\" out of range"));
  EXPECT_TRUE(HasDiag(diags, "\"us\" out of range"));
  EXPECT_TRUE(HasDiag(diags, "missing required key \"channel\""));
  EXPECT_TRUE(HasDiag(diags, "needs \"min\" and/or \"max\""));
  EXPECT_TRUE(HasDiag(diags, "min > max"));
}

TEST(SpecParseTest, FlagsCrossVmChannels) {
  auto diags = Lint(R"({
  "name": "d",
  "vms": [{"name": "v1"}, {"name": "v2", "variant": "microvm"}],
  "groups": [
    {"name": "a", "vm": "v1", "actions": [{"op": "send", "channel": "c"}]},
    {"name": "b", "vm": "v2", "actions": [{"op": "recv", "channel": "c"}]}
  ],
  "channels": [{"name": "c", "kind": "pipe", "from": "a", "to": "b"}]
})");
  EXPECT_TRUE(HasDiag(diags, "spans vms \"v1\" and \"v2\""));
}

TEST(SpecParseTest, GoldenMalformedSpecMessages) {
  // Exact diagnostic strings: tools and editors key off this format.
  const std::string text = "{\n"
                           "  \"name\": \"golden\",\n"
                           "  \"groups\": [\n"
                           "    {\"name\": \"g\",\n"
                           "     \"workers\": \"two\",\n"
                           "     \"actions\": [{\"op\": \"nap\"}]}\n"
                           "  ]\n"
                           "}";
  auto diags = Lint(text);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0], "5:17: \"workers\" must be a number");
  EXPECT_EQ(diags[1], "6:25: unknown action op \"nap\"");
}

TEST(SpecParseTest, ParseScenarioStatusCarriesFirstDiagnostic) {
  auto spec = ParseScenario("{\"name\": \"x\"}");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("missing required key \"groups\""),
            std::string::npos)
      << spec.status().message();
}

TEST(SpecParseTest, RegistryAndMixMenuAreStable) {
  // The validator is registry-driven; every registered op resolves and the
  // mix menu stays non-empty and duplicate-free.
  EXPECT_GE(ActionRegistry().size(), 11u);
  for (const ActionDef& def : ActionRegistry()) {
    EXPECT_EQ(FindAction(def.op), &def);
  }
  EXPECT_GE(MixableSyscalls().size(), 10u);
  EXPECT_EQ(FindAction("no-such-op"), nullptr);
}

TEST(SpecParseTest, ScenarioCorpusLintsClean) {
  const std::filesystem::path dir = LUPINE_SCENARIO_DIR;
  size_t specs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") {
      continue;
    }
    ++specs;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::vector<SpecDiagnostic> diags;
    EXPECT_TRUE(LintScenario(buffer.str(), &diags))
        << entry.path() << ": " << (diags.empty() ? "?" : diags[0].ToString());
  }
  EXPECT_GE(specs, 5u);
}

}  // namespace
}  // namespace lupine::loadspec

#include "src/loadspec/interpreter.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/loadspec/parser.h"
#include "src/telemetry/journal.h"

namespace lupine::loadspec {
namespace {

std::string ReadSpecFile(const char* basename) {
  const std::filesystem::path path = std::filesystem::path(LUPINE_SCENARIO_DIR) / basename;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(InterpreterTest, RunsMinimalSpec) {
  auto result = RunScenarioText(R"({
    "name": "mini",
    "groups": [{"name": "g", "workers": 2, "iterations": 10,
                "actions": [{"op": "syscall_mix", "count": 5, "mix": {"getppid": 1}},
                            {"op": "compute", "us": 3}]}]
  })");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->total_iterations, 20u);
  EXPECT_EQ(result->blocked, 0u);
  EXPECT_GT(result->elapsed, 0);
  // 2 workers x 10 iterations x 5 draws, all getppid.
  EXPECT_EQ(result->SyscallCount("getppid"), 100u);
}

TEST(InterpreterTest, PipePingPongCompletes) {
  auto result = RunScenarioText(ReadSpecFile("pipe_latency.json"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_EQ(result->total_iterations, 2000u);
  EXPECT_EQ(result->blocked, 0u);
  EXPECT_GE(result->SyscallCount("write"), 2000u);
  EXPECT_GE(result->SyscallCount("read"), 2000u);
}

TEST(InterpreterTest, DgramFanoutCompletes) {
  auto result = RunScenarioText(ReadSpecFile("fanout_microservice.json"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok()) << (result->failures.empty() ? "" : result->failures[0]);
  EXPECT_EQ(result->blocked, 0u);
}

TEST(InterpreterTest, ThreadModeGroupJoinsAllWorkers) {
  auto result = RunScenarioText(R"({
    "name": "threads",
    "groups": [{"name": "t", "workers": 4, "mode": "thread", "iterations": 6,
                "actions": [{"op": "sem_lock", "compute_ns": 500},
                            {"op": "yield"}]}]
  })");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_iterations, 24u);
  EXPECT_EQ(result->blocked, 0u);
}

TEST(InterpreterTest, ExpectViolationsAreReportedNotFatal) {
  auto result = RunScenarioText(R"({
    "name": "strict",
    "groups": [{"name": "g", "iterations": 2, "actions": [{"op": "yield"}]}],
    "expect": [{"metric": "iterations", "min": 1000000}]
  })");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->ok());
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_NE(result->failures[0].find("below expected min"), std::string::npos);
}

TEST(InterpreterTest, KmlLowersPipeLatency) {
  const std::string text = ReadSpecFile("pipe_latency.json");
  ScenarioOptions kml;
  kml.kml_override = 1;
  ScenarioOptions nokml;
  nokml.kml_override = 0;
  auto fast = RunScenarioText(text, kml);
  auto slow = RunScenarioText(text, nokml);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  // Same work, cheaper kernel entries: KML must finish the scenario sooner.
  EXPECT_LT(fast->elapsed, slow->elapsed);
  EXPECT_EQ(fast->total_iterations, slow->total_iterations);
}

TEST(InterpreterTest, SameSeedSameFigures) {
  const std::string text = ReadSpecFile("bursty_tenant.json");
  auto a = RunScenarioText(text);
  auto b = RunScenarioText(text);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->CanonicalFiguresInput(), b->CanonicalFiguresInput());

  ScenarioOptions reseeded;
  reseeded.has_seed_override = true;
  reseeded.seed_override = 777;
  auto c = RunScenarioText(text, reseeded);
  ASSERT_TRUE(c.ok());
  // Reseeding reshuffles the mix draws but not the amount of work.
  EXPECT_EQ(a->total_iterations, c->total_iterations);
}

// The determinism contract of the tentpole: the same spec, run with 1/2/4/8
// host workers, must produce byte-identical figures and a byte-identical
// canonical journal. Uses a two-VM spec so the pool has real parallelism.
TEST(ScenarioStorm, WorkerCountInvariantFiguresAndJournal) {
  const char* text = R"({
    "name": "storm",
    "seed": 5,
    "vms": [
      {"name": "a", "variant": "lupine-general"},
      {"name": "b", "variant": "lupine-general-nokml"},
      {"name": "c", "variant": "microvm"}
    ],
    "groups": [
      {"name": "ga", "vm": "a", "workers": 2, "iterations": 40,
       "actions": [{"op": "syscall_mix", "count": 6,
                    "mix": {"getppid": 3, "read": 2, "brk": 1, "futex": 1}}]},
      {"name": "gb", "vm": "b", "workers": 2, "iterations": 30,
       "actions": [{"op": "mem_touch", "kb": 32}, {"op": "sleep", "us": 10}]},
      {"name": "gc", "vm": "c", "workers": 1, "iterations": 20,
       "actions": [{"op": "fork_work", "units": 1, "compute_us": 50, "write_kb": 2}]}
    ]
  })";
  std::string reference;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    telemetry::Journal journal;
    ScenarioOptions options;
    options.workers = workers;
    options.journal = &journal;
    auto result = RunScenarioText(text, options);
    ASSERT_TRUE(result.ok()) << "workers=" << workers << ": "
                             << result.status().ToString();
    const std::string canonical =
        result->CanonicalFiguresInput() + journal.ExportJsonl(false);
    if (reference.empty()) {
      reference = canonical;
      EXPECT_GT(result->total_iterations, 0u);
    } else {
      EXPECT_EQ(canonical, reference) << "workers=" << workers;
    }
  }
}

// tsan-safe storm (no guest fibers): the parser/linter hammered from many
// host threads over the whole corpus must race-free produce identical
// diagnostics.
TEST(SpecLintStorm, ConcurrentLintingIsRaceFree) {
  std::vector<std::string> corpus;
  for (const auto& entry :
       std::filesystem::directory_iterator(LUPINE_SCENARIO_DIR)) {
    if (entry.path().extension() == ".json") {
      std::ifstream in(entry.path());
      std::stringstream buffer;
      buffer << in.rdbuf();
      corpus.push_back(buffer.str());
    }
  }
  corpus.push_back("{\"name\": \"broken\"");  // syntax error
  corpus.push_back(R"({"name": "x", "groups": [{"name": "g",
                     "actions": [{"op": "warp"}]}]})");
  ASSERT_GE(corpus.size(), 7u);

  std::vector<std::vector<int>> verdicts(8);
  std::vector<std::thread> threads;
  threads.reserve(verdicts.size());
  for (size_t t = 0; t < verdicts.size(); ++t) {
    threads.emplace_back([&corpus, &verdicts, t] {
      for (int round = 0; round < 20; ++round) {
        for (const std::string& text : corpus) {
          std::vector<SpecDiagnostic> diags;
          verdicts[t].push_back(LintScenario(text, &diags) ? 1 : 0);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (size_t t = 1; t < verdicts.size(); ++t) {
    EXPECT_EQ(verdicts[t], verdicts[0]);
  }
}

}  // namespace
}  // namespace lupine::loadspec

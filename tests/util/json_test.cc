#include "src/util/json.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line1\nline2\ttab\rcr"), "line1\\nline2\\ttab\\rcr");
  // Other control bytes as \u00XX — including the cache-key separators.
  EXPECT_EQ(JsonEscape(std::string("a\x1f") + "b"), "a\\u001fb");
  EXPECT_EQ(JsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscapeTest, HighBytesAreNotSignExtended) {
  // 0xE9 must pass through as-is (UTF-8 continuation territory), never
  // become \uffe9 via signed-char sign extension.
  const std::string s = "caf\xc3\xa9";
  EXPECT_EQ(JsonEscape(s), s);
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->boolean, true);
  EXPECT_EQ(ParseJson("false")->boolean, false);
  EXPECT_DOUBLE_EQ(ParseJson("3.25")->number, 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("-17")->number, -17.0);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->number, 1000.0);
  EXPECT_EQ(ParseJson("\"abc\"")->str, "abc");
}

TEST(JsonParseTest, ParsesNestedDocument) {
  auto doc = ParseJson(R"({"a": [1, 2, {"b": "c"}], "d": {"e": true}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[2].Find("b")->str, "c");
  EXPECT_TRUE(doc->Find("d")->Find("e")->boolean);
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  auto doc = ParseJson(R"("a\n\t\"\\\u0041\u00e9")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->str, "a\n\t\"\\A\xc3\xa9");
}

TEST(JsonParseTest, DecodesSurrogatePairs) {
  auto doc = ParseJson(R"("\ud83d\ude00")");  // 😀 U+1F600
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->str, "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, PreservesObjectOrderAndDuplicateLookupIsLast) {
  auto doc = ParseJson(R"({"z": 1, "a": 2, "z": 3})");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->object.size(), 3u);
  EXPECT_EQ(doc->object[0].first, "z");
  EXPECT_EQ(doc->object[1].first, "a");
  EXPECT_DOUBLE_EQ(doc->Find("z")->number, 3.0);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // Trailing garbage.
  EXPECT_FALSE(ParseJson("\"bad \\q escape\"").ok());
}

TEST(JsonParseTest, ErrorsCarryByteOffsets) {
  auto doc = ParseJson("[1, x]");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("offset 4"), std::string::npos)
      << doc.status().message();
}

TEST(JsonParseTest, DepthCapStopsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParseTest, RoundTripsEscapedStrings) {
  const std::string raw = "tab\there \"quoted\" back\\slash \x01";
  auto doc = ParseJson("\"" + JsonEscape(raw) + "\"");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->str, raw);
}

TEST(JsonParseTest, ConfigurableDepthLimit) {
  JsonParseOptions options;
  options.max_depth = 4;
  EXPECT_TRUE(ParseJson("[[[[1]]]]", options).ok());
  EXPECT_FALSE(ParseJson("[[[[[1]]]]]", options).ok());
  // The default remains the historical 256.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_TRUE(ParseJson(deep).ok());
}

TEST(JsonParseTest, DuplicateKeysRejectedOnRequest) {
  const std::string doc = "{\"a\": 1, \"b\": 2, \"a\": 3}";
  // Default: last value wins (historical behavior).
  auto lax = ParseJson(doc);
  ASSERT_TRUE(lax.ok());
  EXPECT_DOUBLE_EQ(lax->Find("a")->number, 3.0);

  JsonParseOptions options;
  options.reject_duplicate_keys = true;
  JsonParseError error;
  auto strict = ParseJson(doc, options, &error);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(error.what.find("duplicate key \"a\""), std::string::npos) << error.what;
  EXPECT_EQ(error.offset, doc.find("\"a\": 3"));
}

TEST(JsonParseTest, StructuredErrorSinkMatchesStatusText) {
  JsonParseError error;
  auto doc = ParseJson("[1, x]", JsonParseOptions{}, &error);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(error.offset, 4u);
  EXPECT_NE(doc.status().message().find(error.what), std::string::npos);
}

TEST(JsonParseTest, ValuesCarryOffsets) {
  const std::string text = "{\n  \"a\": [1, 2],\n  \"b\": \"x\"\n}";
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(text[a->offset], '[');
  EXPECT_EQ(a->key_offset, text.find("\"a\""));
  const JsonValue* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  LineCol at = OffsetToLineCol(text, b->key_offset);
  EXPECT_EQ(at.line, 3);
  EXPECT_EQ(at.col, 3);
}

TEST(JsonParseTest, OffsetToLineColCountsNewlines) {
  const std::string text = "ab\ncd\nef";
  EXPECT_EQ(OffsetToLineCol(text, 0).line, 1);
  EXPECT_EQ(OffsetToLineCol(text, 0).col, 1);
  EXPECT_EQ(OffsetToLineCol(text, 4).line, 2);
  EXPECT_EQ(OffsetToLineCol(text, 4).col, 2);
  EXPECT_EQ(OffsetToLineCol(text, 6).line, 3);
  EXPECT_EQ(OffsetToLineCol(text, 6).col, 1);
  // Past-the-end offsets clamp instead of reading out of bounds.
  EXPECT_EQ(OffsetToLineCol(text, 999).line, 3);
}

TEST(JsonParseTest, Utf8EscapeRoundTrip) {
  // é (é), 中 (中), and a surrogate pair (😀) decode to UTF-8...
  auto doc = ParseJson("\"\\u00e9 \\u4e2d \\ud83d\\ude00\"");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->str, "\xC3\xA9 \xE4\xB8\xAD \xF0\x9F\x98\x80");
  // ...and non-ASCII bytes pass through JsonEscape untouched, so the
  // decoded string re-embeds and re-parses to itself.
  auto again = ParseJson("\"" + JsonEscape(doc->str) + "\"");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->str, doc->str);
}

}  // namespace
}  // namespace lupine

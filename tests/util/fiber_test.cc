#include "src/util/fiber.h"

#include <gtest/gtest.h>

#include <vector>

namespace lupine {
namespace {

TEST(FiberTest, RunsToCompletion) {
  int x = 0;
  Fiber fiber([&] { x = 42; });
  EXPECT_FALSE(fiber.finished());
  fiber.Resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(x, 42);
}

TEST(FiberTest, YieldSuspendsAndResumes) {
  std::vector<int> order;
  Fiber fiber([&] {
    order.push_back(1);
    Fiber::Yield();
    order.push_back(3);
    Fiber::Yield();
    order.push_back(5);
  });
  fiber.Resume();
  order.push_back(2);
  fiber.Resume();
  order.push_back(4);
  EXPECT_FALSE(fiber.finished());
  fiber.Resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FiberTest, CurrentTracksRunningFiber) {
  EXPECT_EQ(Fiber::Current(), nullptr);
  Fiber* seen = nullptr;
  Fiber fiber([&] { seen = Fiber::Current(); });
  fiber.Resume();
  EXPECT_EQ(seen, &fiber);
  EXPECT_EQ(Fiber::Current(), nullptr);
}

TEST(FiberTest, NestedFibers) {
  std::vector<int> order;
  Fiber inner([&] {
    order.push_back(2);
    Fiber::Yield();
    order.push_back(4);
  });
  Fiber outer([&] {
    order.push_back(1);
    inner.Resume();
    order.push_back(3);
    inner.Resume();
    order.push_back(5);
  });
  outer.Resume();
  EXPECT_TRUE(outer.finished());
  EXPECT_TRUE(inner.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FiberTest, ManyFibersInterleave) {
  constexpr int kFibers = 100;
  int counter = 0;
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&] {
      ++counter;
      Fiber::Yield();
      ++counter;
    }));
  }
  for (auto& f : fibers) {
    f->Resume();
  }
  EXPECT_EQ(counter, kFibers);
  for (auto& f : fibers) {
    f->Resume();
  }
  EXPECT_EQ(counter, 2 * kFibers);
  for (auto& f : fibers) {
    EXPECT_TRUE(f->finished());
  }
}

TEST(FiberTest, StackLocalStatePersistsAcrossYields) {
  int out = 0;
  Fiber fiber([&] {
    int local = 7;
    Fiber::Yield();
    local += 10;
    Fiber::Yield();
    out = local;
  });
  fiber.Resume();
  fiber.Resume();
  fiber.Resume();
  EXPECT_EQ(out, 17);
}

}  // namespace
}  // namespace lupine

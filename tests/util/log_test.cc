#include "src/util/log.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(LogTest, LevelRoundTrips) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

TEST(LogTest, MacrosCompileAndRespectLevel) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  // Streams must still evaluate safely even when suppressed by level.
  LOG_DEBUG << "invisible " << 42;
  LOG_INFO << "invisible " << 3.14;
  LOG_WARN << "invisible";
  LOG_ERROR << "invisible";
  SetLogLevel(saved);
  SUCCEED();
}

TEST(LogTest, LogMessageStripsDirectories) {
  // Behavioural smoke: must not crash with odd file paths.
  LogMessage(LogLevel::kError, "/a/b/c.cc", 1, "message");
  LogMessage(LogLevel::kError, "nodir.cc", 2, "message");
  SUCCEED();
}

}  // namespace
}  // namespace lupine

// WorkStealingScheduler: deque policy, DAG gating, flight groups and the
// determinism of the virtual-time replay. Most tests drive Simulate directly
// — the replay is the product (every reported fleet figure comes from it);
// host execution is covered by the SchedulerStorm suite, which is
// Boot()-free and tsan-compatible (the tsan CI leg selects it by name).
#include "src/util/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/util/units.h"

namespace lupine {
namespace {

using Report = WorkStealingScheduler::Report;
using SimTask = WorkStealingScheduler::SimTask;

Report Sim(size_t workers, bool stealing, const std::vector<SimTask>& tasks,
           const std::vector<Nanos>& group_costs = {}) {
  return WorkStealingScheduler::Simulate({workers, stealing}, tasks, group_costs);
}

TEST(SchedulerTest, OneWorkerRunsTheLegacySerialOrder) {
  // At W=1 the deque policy must degenerate to exactly the old static
  // shard's schedule: tasks in ascending submission order, back to back.
  std::vector<SimTask> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({.home = 0, .cost = Nanos{10 * (i + 1)}});
  }
  Report report = Sim(1, /*stealing=*/true, tasks);
  EXPECT_EQ(report.makespan, Nanos{100});
  EXPECT_EQ(report.steals, 0u);
  Nanos expected_start = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(report.tasks[i].start, expected_start) << "task " << i;
    expected_start += tasks[i].cost;
  }
  ASSERT_EQ(report.worker_queue_peak.size(), 1u);
  EXPECT_EQ(report.worker_queue_peak[0], 4u);  // All four queued at once.
}

TEST(SchedulerTest, StealTakesTheOldestTaskFromTheVictimsFront) {
  // Four tasks homed on worker 0; worker 0 grabs task 0 (back of its deque
  // = lowest id), so an idle worker 1 must steal from the front: the
  // highest-id entries, oldest-pushed first — 3, then 2, then 1.
  std::vector<SimTask> tasks = {
      {.home = 0, .cost = Nanos{100}},
      {.home = 0, .cost = Nanos{10}},
      {.home = 0, .cost = Nanos{10}},
      {.home = 0, .cost = Nanos{10}},
  };
  Report report = Sim(2, /*stealing=*/true, tasks);
  EXPECT_EQ(report.makespan, Nanos{100});  // Worker 0's one big task.
  EXPECT_EQ(report.steals, 3u);
  EXPECT_EQ(report.tasks[0].worker, 0);
  EXPECT_FALSE(report.tasks[0].stolen);
  for (size_t id : {3u, 2u, 1u}) {
    EXPECT_EQ(report.tasks[id].worker, 1) << "task " << id;
    EXPECT_TRUE(report.tasks[id].stolen) << "task " << id;
  }
  // FIFO steal order: front-most (task 3) first.
  EXPECT_EQ(report.tasks[3].start, Nanos{0});
  EXPECT_EQ(report.tasks[2].start, Nanos{10});
  EXPECT_EQ(report.tasks[1].start, Nanos{20});
}

TEST(SchedulerTest, StealingOffIsTheStaticShard) {
  // Same shape, stealing disabled: worker 1 idles and worker 0 pays the
  // whole shard serially — the legacy baseline as a degenerate policy.
  std::vector<SimTask> tasks = {
      {.home = 0, .cost = Nanos{100}},
      {.home = 0, .cost = Nanos{10}},
      {.home = 0, .cost = Nanos{10}},
      {.home = 0, .cost = Nanos{10}},
  };
  Report report = Sim(2, /*stealing=*/false, tasks);
  EXPECT_EQ(report.makespan, Nanos{130});
  EXPECT_EQ(report.steals, 0u);
  EXPECT_EQ(report.worker_busy[0], Nanos{130});
  EXPECT_EQ(report.worker_busy[1], Nanos{0});
}

TEST(SchedulerTest, PinnedTasksNeverMigrate) {
  // Two pinned tasks and one unpinned on worker 0's deque. The thief may
  // take the unpinned one but must leave the pinned ones to starve behind
  // worker 0's long task.
  std::vector<SimTask> tasks = {
      {.home = 0, .pin = 0, .cost = Nanos{100}},
      {.home = 0, .pin = 0, .cost = Nanos{10}},
      {.home = 0, .cost = Nanos{10}},
  };
  Report report = Sim(2, /*stealing=*/true, tasks);
  EXPECT_EQ(report.tasks[2].worker, 1);  // The unpinned task is stolen...
  EXPECT_TRUE(report.tasks[2].stolen);
  EXPECT_EQ(report.tasks[0].worker, 0);  // ...the pinned ones are not.
  EXPECT_EQ(report.tasks[1].worker, 0);
  EXPECT_EQ(report.tasks[1].start, Nanos{100});  // Behind the long task.
  EXPECT_EQ(report.makespan, Nanos{110});
  EXPECT_EQ(report.steals, 1u);
}

TEST(SchedulerTest, DependentStagesOverlapAcrossWorkers) {
  // The fleet's pipelined shape in miniature: one provisioning task gates
  // two boots. Both boots become ready the instant it completes, and the
  // idle worker steals one — the two dependents run concurrently.
  std::vector<SimTask> tasks = {
      {.home = 0, .cost = Nanos{50}, .label = "build"},
      {.home = 0, .cost = Nanos{10}, .deps = {0}, .label = "boot-a"},
      {.home = 1, .cost = Nanos{10}, .deps = {0}, .label = "boot-b"},
  };
  Report report = Sim(2, /*stealing=*/true, tasks);
  EXPECT_EQ(report.tasks[1].start, Nanos{50});  // Neither dispatched before
  EXPECT_EQ(report.tasks[2].start, Nanos{50});  // the dependency resolved.
  EXPECT_EQ(report.makespan, Nanos{60});
  EXPECT_EQ(report.steals, 1u);
}

TEST(SchedulerTest, FlightGroupChargesOnePaymentAndBlocksConcurrents) {
  // Two tasks join one 100ns flight group from different workers. The first
  // dispatched pays and starts at 100; the concurrently-dispatched second
  // waits out the flight and pays nothing — total group cost charged once.
  std::vector<SimTask> tasks = {
      {.home = 0, .cost = Nanos{10}, .groups = {0}},
      {.home = 1, .cost = Nanos{10}, .groups = {0}},
  };
  Report report = Sim(2, /*stealing=*/true, tasks, {Nanos{100}});
  EXPECT_EQ(report.tasks[0].dispatched, Nanos{0});
  EXPECT_EQ(report.tasks[0].start, Nanos{100});  // Paid the flight.
  EXPECT_EQ(report.tasks[1].dispatched, Nanos{0});
  EXPECT_EQ(report.tasks[1].start, Nanos{100});  // Waited, paid nothing.
  EXPECT_EQ(report.makespan, Nanos{110});
  // A third member dispatched after the flight resolved rides free with no
  // wait at all.
  tasks.push_back({.home = 0, .cost = Nanos{10}, .groups = {0}});
  Report late = Sim(1, /*stealing=*/true, tasks, {Nanos{100}});
  EXPECT_EQ(late.tasks[2].start, late.tasks[2].dispatched);
  EXPECT_EQ(late.makespan, Nanos{130});  // 100 flight + 3 x 10, paid once.
}

TEST(SchedulerTest, EmptyTaskSetTerminates) {
  Report report = Sim(4, /*stealing=*/true, {});
  EXPECT_EQ(report.makespan, Nanos{0});
  EXPECT_EQ(report.steals, 0u);
  ASSERT_EQ(report.worker_busy.size(), 4u);
  EXPECT_EQ(report.worker_busy[0], Nanos{0});

  WorkStealingScheduler empty({.workers = 4});
  Report host = empty.Run();  // Host path must also terminate with no work.
  EXPECT_EQ(host.makespan, Nanos{0});
}

TEST(SchedulerTest, ReplayIsDeterministic) {
  // An uneven DAG replayed twice must produce identical reports field by
  // field — the property every fleet figure rests on.
  std::vector<SimTask> tasks;
  for (size_t i = 0; i < 40; ++i) {
    SimTask task;
    task.home = static_cast<int>(i % 3);
    task.cost = Nanos{static_cast<Nanos>((i * 37) % 90 + 5)};
    if (i >= 10) {
      task.deps.push_back(i - 10);
    }
    tasks.push_back(task);
  }
  Report a = Sim(3, /*stealing=*/true, tasks);
  Report b = Sim(3, /*stealing=*/true, tasks);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.worker_busy, b.worker_busy);
  EXPECT_EQ(a.worker_queue_peak, b.worker_queue_peak);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].worker, b.tasks[i].worker) << i;
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start) << i;
    EXPECT_EQ(a.tasks[i].end, b.tasks[i].end) << i;
    EXPECT_EQ(a.tasks[i].stolen, b.tasks[i].stolen) << i;
  }
}

TEST(SchedulerStorm, HostExecutionRunsEveryBodyOnceAndReplaysIdentically) {
  // 200 bodies over 4 host threads: every body runs exactly once, and the
  // report equals a direct Simulate of the same spec — host thread timing
  // must never leak into the replay figures.
  constexpr size_t kTasks = 200;
  std::atomic<size_t> executed{0};
  WorkStealingScheduler scheduler({.workers = 4});
  std::vector<SimTask> mirror;
  for (size_t i = 0; i < kTasks; ++i) {
    const Nanos cost = Nanos{static_cast<Nanos>((i * 13) % 70 + 1)};
    WorkStealingScheduler::TaskSpec spec;
    spec.body = [&executed, cost] {
      executed.fetch_add(1, std::memory_order_relaxed);
      return cost;
    };
    spec.home = static_cast<int>(i % 4);
    if (i >= 8) {
      spec.deps.push_back(i - 8);
    }
    mirror.push_back({spec.home, spec.pin, cost, spec.deps, spec.groups, spec.label});
    scheduler.Submit(std::move(spec));
  }
  Report host = scheduler.Run();
  EXPECT_EQ(executed.load(), kTasks);

  Report replay = Sim(4, /*stealing=*/true, mirror);
  EXPECT_EQ(host.makespan, replay.makespan);
  EXPECT_EQ(host.steals, replay.steals);
  EXPECT_EQ(host.worker_busy, replay.worker_busy);
  ASSERT_EQ(host.tasks.size(), replay.tasks.size());
  for (size_t i = 0; i < host.tasks.size(); ++i) {
    EXPECT_EQ(host.tasks[i].worker, replay.tasks[i].worker) << i;
    EXPECT_EQ(host.tasks[i].end, replay.tasks[i].end) << i;
  }
}

TEST(SchedulerStorm, FlightGroupsExecuteHostBodiesExactlyOnce) {
  // Group-sharing tasks from every worker: host-side single-flight must not
  // duplicate or drop bodies however the threads race.
  constexpr size_t kTasks = 64;
  std::atomic<size_t> executed{0};
  WorkStealingScheduler scheduler({.workers = 4});
  const size_t group = scheduler.DefineFlightGroup(Millis(1));
  for (size_t i = 0; i < kTasks; ++i) {
    WorkStealingScheduler::TaskSpec spec;
    spec.body = [&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      return Nanos{5};
    };
    spec.home = static_cast<int>(i % 4);
    spec.groups = {group};
    scheduler.Submit(std::move(spec));
  }
  Report report = scheduler.Run();
  EXPECT_EQ(executed.load(), kTasks);
  // Exactly one task paid the 1ms flight; everyone else overlapped or rode
  // free, so the makespan is far below 64 serial payments.
  EXPECT_GE(report.makespan, Millis(1));
  EXPECT_LT(report.makespan, Millis(2));
}


TEST(SchedulerTest, ReleaseTimesGateDispatchAndIdleJump) {
  // Open-loop arrivals: a task is not dispatched before its release even
  // when the worker is idle — the replay jumps the idle worker's clock to
  // the release instant instead of busy-waiting.
  std::vector<SimTask> tasks;
  tasks.push_back({.home = 0, .cost = Nanos{10}});
  tasks.push_back({.home = 0, .cost = Nanos{10}, .release = Nanos{100}});
  Report report = Sim(1, /*stealing=*/true, tasks);
  EXPECT_EQ(report.tasks[0].start, Nanos{0});
  EXPECT_EQ(report.tasks[1].start, Nanos{100});  // Idle 10..100, then run.
  EXPECT_EQ(report.makespan, Nanos{110});
}

TEST(SchedulerTest, ReleaseComposesWithDeps) {
  // Dispatch waits for max(release, deps done): an early release does not
  // jump a dependency, and a late release holds a ready task back.
  std::vector<SimTask> tasks;
  tasks.push_back({.home = 0, .cost = Nanos{50}});
  tasks.push_back({.home = 0, .cost = Nanos{10}, .deps = {0}, .release = Nanos{5}});
  tasks.push_back({.home = 0, .cost = Nanos{10}, .deps = {0}, .release = Nanos{90}});
  Report report = Sim(1, /*stealing=*/true, tasks);
  EXPECT_EQ(report.tasks[1].start, Nanos{50});  // Dep dominates release.
  EXPECT_EQ(report.tasks[2].start, Nanos{90});  // Release dominates dep.
}

TEST(SchedulerTest, ReleasedScheduleReplaysIdenticallyAcrossWorkerCounts) {
  // The serving pattern: request tasks with arrival releases plus refill
  // chains. Total busy time (the sum of task costs) is invariant across
  // worker counts even as the schedule shape changes.
  std::vector<SimTask> tasks;
  for (size_t i = 0; i < 60; ++i) {
    SimTask task;
    task.home = static_cast<int>(i % 4);
    task.cost = Nanos{static_cast<Nanos>((i * 13) % 40 + 10)};
    task.release = Nanos{static_cast<Nanos>(i * 7)};
    if (i >= 12 && i % 3 == 0) {
      task.deps.push_back(i - 12);
    }
    tasks.push_back(task);
  }
  Report a = Sim(2, /*stealing=*/true, tasks);
  Report b = Sim(2, /*stealing=*/true, tasks);
  EXPECT_EQ(a.makespan, b.makespan);
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start) << i;
    EXPECT_GE(a.tasks[i].dispatched, tasks[i].release) << i;
  }
}

}  // namespace
}  // namespace lupine

#include "src/util/table.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.AddRow("alpha", 1);
  t.AddRow("beta", 2.5);
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRowVec({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(TableTest, IntegerValuedDoublesPrintWithoutDecimals) {
  Table t({"v"});
  t.AddRow(15953.0);
  EXPECT_NE(t.ToString().find("15953"), std::string::npos);
  EXPECT_EQ(t.ToString().find("15953.0"), std::string::npos);
}

TEST(TableTest, SmallValuesKeepPrecision) {
  Table t({"v"});
  t.AddRow(0.056);
  EXPECT_NE(t.ToString().find("0.0560"), std::string::npos);
}

TEST(TableTest, CsvEscapesNothingButFormatsRows) {
  Table t({"a", "b"});
  t.AddRow("x", 1);
  t.AddRow("y", 2);
  // Render CSV through a pipe-backed FILE.
  char buffer[256] = {};
  std::FILE* f = fmemopen(buffer, sizeof(buffer), "w");
  ASSERT_NE(f, nullptr);
  t.PrintCsv(f);
  std::fclose(f);
  EXPECT_STREQ(buffer, "a,b\nx,1\ny,2\n");
}

}  // namespace
}  // namespace lupine

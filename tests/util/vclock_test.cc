#include "src/util/vclock.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.Advance(0);
  EXPECT_EQ(clock.now(), 100);
}

TEST(VirtualClockTest, AdvanceToNeverMovesBackwards) {
  VirtualClock clock;
  clock.Advance(500);
  clock.AdvanceTo(300);  // In the past: no-op.
  EXPECT_EQ(clock.now(), 500);
  clock.AdvanceTo(700);
  EXPECT_EQ(clock.now(), 700);
}

TEST(VirtualStopwatchTest, MeasuresElapsed) {
  VirtualClock clock;
  VirtualStopwatch watch(clock);
  clock.Advance(250);
  EXPECT_EQ(watch.Elapsed(), 250);
  watch.Restart();
  EXPECT_EQ(watch.Elapsed(), 0);
  clock.Advance(10);
  EXPECT_EQ(watch.Elapsed(), 10);
}

}  // namespace
}  // namespace lupine

#include "src/util/prng.h"

#include <gtest/gtest.h>

#include <set>

namespace lupine {
namespace {

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(PrngTest, NextBelowStaysInRange) {
  Prng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(PrngTest, NextInRangeInclusive) {
  Prng rng(42);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, BoolProbabilityRoughlyRespected) {
  Prng rng(9);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) {
      ++trues;
    }
  }
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

TEST(PrngTest, ZipfSkewsTowardLowRanks) {
  Prng rng(11);
  int low = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    uint64_t r = rng.NextZipf(1000, 0.99);
    EXPECT_LT(r, 1000u);
    if (r < 100) {
      ++low;
    }
  }
  // With theta ~1 the first 10% of ranks should get well over half the mass.
  EXPECT_GT(low, kTrials / 2);
}

TEST(PrngTest, ForkProducesIndependentStream) {
  Prng a(5);
  Prng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

}  // namespace
}  // namespace lupine

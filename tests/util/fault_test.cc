#include "src/util/fault.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(FaultInjectorTest, NullObjectNeverFires) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.Check(FaultSite::kMemAlloc));
  }
  EXPECT_EQ(injector.total_fires(), 0u);
  // A disarmed injector does not even count evaluations (zero bookkeeping on
  // the fault-free path).
  EXPECT_EQ(injector.evaluations(FaultSite::kMemAlloc), 0u);
}

TEST(FaultInjectorTest, FireOnceHitsExactlyTheNthEvaluation) {
  FaultInjector injector(FaultPlan{}.FireOnce(FaultSite::kVfsIo, 3));
  EXPECT_TRUE(injector.armed());
  EXPECT_FALSE(injector.Check(FaultSite::kVfsIo));
  EXPECT_FALSE(injector.Check(FaultSite::kVfsIo));
  EXPECT_TRUE(injector.Check(FaultSite::kVfsIo));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.Check(FaultSite::kVfsIo));
  }
  EXPECT_EQ(injector.fires(FaultSite::kVfsIo), 1u);
  EXPECT_EQ(injector.evaluations(FaultSite::kVfsIo), 103u);
}

TEST(FaultInjectorTest, PeriodicRuleFiresOnSchedule) {
  FaultPlan plan;
  plan.Add({.site = FaultSite::kNetSendDrop, .trigger_on = 2, .period = 3});
  FaultInjector injector(plan);
  std::vector<uint64_t> fired;
  for (uint64_t n = 1; n <= 12; ++n) {
    if (injector.Check(FaultSite::kNetSendDrop)) {
      fired.push_back(n);
    }
  }
  EXPECT_EQ(fired, (std::vector<uint64_t>{2, 5, 8, 11}));
}

TEST(FaultInjectorTest, MaxFiresCapsPeriodicRule) {
  FaultPlan plan;
  plan.Add({.site = FaultSite::kSyscallTransient, .trigger_on = 1, .period = 1,
            .max_fires = 2});
  FaultInjector injector(plan);
  int fires = 0;
  for (int n = 0; n < 50; ++n) {
    fires += injector.Check(FaultSite::kSyscallTransient) ? 1 : 0;
  }
  EXPECT_EQ(fires, 2);
}

TEST(FaultInjectorTest, SitesAreIndependent) {
  FaultInjector injector(FaultPlan{}.FireOnce(FaultSite::kMemAlloc, 1));
  EXPECT_FALSE(injector.Check(FaultSite::kVfsIo));
  EXPECT_FALSE(injector.Check(FaultSite::kNetRecvReset));
  EXPECT_TRUE(injector.Check(FaultSite::kMemAlloc));
  EXPECT_EQ(injector.evaluations(FaultSite::kVfsIo), 1u);
  EXPECT_EQ(injector.evaluations(FaultSite::kNetRecvReset), 1u);
  EXPECT_EQ(injector.evaluations(FaultSite::kMemAlloc), 1u);
}

std::vector<uint64_t> ProbabilisticSchedule(uint64_t seed, int evaluations) {
  FaultPlan plan;
  plan.seed = seed;
  plan.Add({.site = FaultSite::kNetRecvReset, .probability = 0.2});
  FaultInjector injector(plan);
  std::vector<uint64_t> fired;
  for (int n = 1; n <= evaluations; ++n) {
    if (injector.Check(FaultSite::kNetRecvReset)) {
      fired.push_back(static_cast<uint64_t>(n));
    }
  }
  return fired;
}

TEST(FaultInjectorTest, ProbabilisticScheduleIsSeedDeterministic) {
  auto a = ProbabilisticSchedule(42, 500);
  auto b = ProbabilisticSchedule(42, 500);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());  // p=0.2 over 500 draws fires with near certainty.
  // A different seed produces a different schedule.
  EXPECT_NE(a, ProbabilisticSchedule(43, 500));
}

TEST(FaultInjectorTest, ResetReplaysTheIdenticalSchedule) {
  FaultPlan plan;
  plan.seed = 7;
  plan.Add({.site = FaultSite::kVfsIo, .probability = 0.1});
  plan.FireOnce(FaultSite::kMemAlloc, 4);
  FaultInjector injector(plan);

  auto run = [&injector] {
    std::vector<FaultRecord> log;
    for (int n = 0; n < 200; ++n) {
      (void)injector.Check(FaultSite::kVfsIo);
      (void)injector.Check(FaultSite::kMemAlloc);
    }
    return injector.log();
  };
  auto first = run();
  injector.Reset();
  auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].site, second[i].site);
    EXPECT_EQ(first[i].evaluation, second[i].evaluation);
  }
}

TEST(FaultInjectorTest, UnrelatedSiteRulesDoNotShiftDeterministicTriggers) {
  // Adding a probabilistic rule at another site must not perturb when a
  // deterministic rule fires (counters are per-site, draws are per-rule).
  FaultPlan bare = FaultPlan{}.FireOnce(FaultSite::kBootInitcall, 5);
  FaultPlan noisy = bare;
  noisy.Add({.site = FaultSite::kNetSendDrop, .probability = 0.5});

  auto schedule = [](const FaultPlan& plan) {
    FaultInjector injector(plan);
    std::vector<int> fired;
    for (int n = 1; n <= 10; ++n) {
      (void)injector.Check(FaultSite::kNetSendDrop);
      if (injector.Check(FaultSite::kBootInitcall)) {
        fired.push_back(n);
      }
    }
    return fired;
  };
  EXPECT_EQ(schedule(bare), schedule(noisy));
  EXPECT_EQ(schedule(bare), (std::vector<int>{5}));
}

TEST(FaultSiteTest, EverySiteHasAName) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    EXPECT_STRNE(FaultSiteName(static_cast<FaultSite>(i)), "");
  }
  EXPECT_STREQ(FaultSiteName(FaultSite::kAppFault), "app-fault");
}

}  // namespace
}  // namespace lupine

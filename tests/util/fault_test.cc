#include "src/util/fault.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(FaultInjectorTest, NullObjectNeverFires) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.Check(FaultSite::kMemAlloc));
  }
  EXPECT_EQ(injector.total_fires(), 0u);
  // A disarmed injector does not even count evaluations (zero bookkeeping on
  // the fault-free path).
  EXPECT_EQ(injector.evaluations(FaultSite::kMemAlloc), 0u);
}

TEST(FaultInjectorTest, FireOnceHitsExactlyTheNthEvaluation) {
  FaultInjector injector(FaultPlan{}.FireOnce(FaultSite::kVfsIo, 3));
  EXPECT_TRUE(injector.armed());
  EXPECT_FALSE(injector.Check(FaultSite::kVfsIo));
  EXPECT_FALSE(injector.Check(FaultSite::kVfsIo));
  EXPECT_TRUE(injector.Check(FaultSite::kVfsIo));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.Check(FaultSite::kVfsIo));
  }
  EXPECT_EQ(injector.fires(FaultSite::kVfsIo), 1u);
  EXPECT_EQ(injector.evaluations(FaultSite::kVfsIo), 103u);
}

TEST(FaultInjectorTest, PeriodicRuleFiresOnSchedule) {
  FaultPlan plan;
  plan.Add({.site = FaultSite::kNetSendDrop, .trigger_on = 2, .period = 3});
  FaultInjector injector(plan);
  std::vector<uint64_t> fired;
  for (uint64_t n = 1; n <= 12; ++n) {
    if (injector.Check(FaultSite::kNetSendDrop)) {
      fired.push_back(n);
    }
  }
  EXPECT_EQ(fired, (std::vector<uint64_t>{2, 5, 8, 11}));
}

TEST(FaultInjectorTest, MaxFiresCapsPeriodicRule) {
  FaultPlan plan;
  plan.Add({.site = FaultSite::kSyscallTransient, .trigger_on = 1, .period = 1,
            .max_fires = 2});
  FaultInjector injector(plan);
  int fires = 0;
  for (int n = 0; n < 50; ++n) {
    fires += injector.Check(FaultSite::kSyscallTransient) ? 1 : 0;
  }
  EXPECT_EQ(fires, 2);
}

TEST(FaultInjectorTest, SitesAreIndependent) {
  FaultInjector injector(FaultPlan{}.FireOnce(FaultSite::kMemAlloc, 1));
  EXPECT_FALSE(injector.Check(FaultSite::kVfsIo));
  EXPECT_FALSE(injector.Check(FaultSite::kNetRecvReset));
  EXPECT_TRUE(injector.Check(FaultSite::kMemAlloc));
  EXPECT_EQ(injector.evaluations(FaultSite::kVfsIo), 1u);
  EXPECT_EQ(injector.evaluations(FaultSite::kNetRecvReset), 1u);
  EXPECT_EQ(injector.evaluations(FaultSite::kMemAlloc), 1u);
}

std::vector<uint64_t> ProbabilisticSchedule(uint64_t seed, int evaluations) {
  FaultPlan plan;
  plan.seed = seed;
  plan.Add({.site = FaultSite::kNetRecvReset, .probability = 0.2});
  FaultInjector injector(plan);
  std::vector<uint64_t> fired;
  for (int n = 1; n <= evaluations; ++n) {
    if (injector.Check(FaultSite::kNetRecvReset)) {
      fired.push_back(static_cast<uint64_t>(n));
    }
  }
  return fired;
}

TEST(FaultInjectorTest, ProbabilisticScheduleIsSeedDeterministic) {
  auto a = ProbabilisticSchedule(42, 500);
  auto b = ProbabilisticSchedule(42, 500);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());  // p=0.2 over 500 draws fires with near certainty.
  // A different seed produces a different schedule.
  EXPECT_NE(a, ProbabilisticSchedule(43, 500));
}

TEST(FaultInjectorTest, ResetReplaysTheIdenticalSchedule) {
  FaultPlan plan;
  plan.seed = 7;
  plan.Add({.site = FaultSite::kVfsIo, .probability = 0.1});
  plan.FireOnce(FaultSite::kMemAlloc, 4);
  FaultInjector injector(plan);

  auto run = [&injector] {
    std::vector<FaultRecord> log;
    for (int n = 0; n < 200; ++n) {
      (void)injector.Check(FaultSite::kVfsIo);
      (void)injector.Check(FaultSite::kMemAlloc);
    }
    return injector.log();
  };
  auto first = run();
  injector.Reset();
  auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].site, second[i].site);
    EXPECT_EQ(first[i].evaluation, second[i].evaluation);
  }
}

TEST(FaultInjectorTest, UnrelatedSiteRulesDoNotShiftDeterministicTriggers) {
  // Adding a probabilistic rule at another site must not perturb when a
  // deterministic rule fires (counters are per-site, draws are per-rule).
  FaultPlan bare = FaultPlan{}.FireOnce(FaultSite::kBootInitcall, 5);
  FaultPlan noisy = bare;
  noisy.Add({.site = FaultSite::kNetSendDrop, .probability = 0.5});

  auto schedule = [](const FaultPlan& plan) {
    FaultInjector injector(plan);
    std::vector<int> fired;
    for (int n = 1; n <= 10; ++n) {
      (void)injector.Check(FaultSite::kNetSendDrop);
      if (injector.Check(FaultSite::kBootInitcall)) {
        fired.push_back(n);
      }
    }
    return fired;
  };
  EXPECT_EQ(schedule(bare), schedule(noisy));
  EXPECT_EQ(schedule(bare), (std::vector<int>{5}));
}

TEST(FaultSiteTest, EverySiteHasAName) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    EXPECT_STRNE(FaultSiteName(static_cast<FaultSite>(i)), "");
  }
  EXPECT_STREQ(FaultSiteName(FaultSite::kAppFault), "app-fault");
  EXPECT_STREQ(FaultSiteName(FaultSite::kBootStall), "boot-stall");
}

TEST(FaultSiteTest, NamesRoundTripThroughFaultSiteFromName) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    auto parsed = FaultSiteFromName(FaultSiteName(site));
    ASSERT_TRUE(parsed.ok()) << FaultSiteName(site);
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(FaultSiteFromName("no-such-site").ok());
  EXPECT_FALSE(FaultSiteFromName("").ok());
}

TEST(FaultPlanJsonTest, RoundTripsEveryRuleField) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.Add({.site = FaultSite::kBootInitcall, .trigger_on = 1, .period = 1,
            .probability = 0.0, .max_fires = 2});
  plan.Add({.site = FaultSite::kNetRecvReset, .probability = 0.25});
  plan.FireOnce(FaultSite::kMemAlloc, 7);

  auto parsed = FaultPlanFromJson(ToJson(plan));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, plan.seed);
  ASSERT_EQ(parsed->rules.size(), plan.rules.size());
  for (size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(parsed->rules[i].site, plan.rules[i].site);
    EXPECT_EQ(parsed->rules[i].trigger_on, plan.rules[i].trigger_on);
    EXPECT_EQ(parsed->rules[i].period, plan.rules[i].period);
    EXPECT_DOUBLE_EQ(parsed->rules[i].probability, plan.rules[i].probability);
    EXPECT_EQ(parsed->rules[i].max_fires, plan.rules[i].max_fires);
  }
  // Serialize -> parse -> serialize is a fixed point (stable data files).
  EXPECT_EQ(ToJson(*parsed), ToJson(plan));
}

TEST(FaultPlanJsonTest, ParserDefaultsOmittedFields) {
  auto plan = FaultPlanFromJson(R"({"rules": [{"site": "vfs-io"}]})");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, FaultPlan{}.seed);
  ASSERT_EQ(plan->rules.size(), 1u);
  EXPECT_EQ(plan->rules[0].site, FaultSite::kVfsIo);
  EXPECT_EQ(plan->rules[0].trigger_on, 0u);
  EXPECT_EQ(plan->rules[0].period, 0u);
  EXPECT_DOUBLE_EQ(plan->rules[0].probability, 0.0);
  EXPECT_EQ(plan->rules[0].max_fires, -1);
}

TEST(FaultPlanJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(FaultPlanFromJson("").ok());
  EXPECT_FALSE(FaultPlanFromJson("[]").ok());
  EXPECT_FALSE(FaultPlanFromJson(R"({"seed": 1)").ok());                     // Truncated.
  EXPECT_FALSE(FaultPlanFromJson(R"({"sede": 1})").ok());                    // Unknown key.
  EXPECT_FALSE(FaultPlanFromJson(R"({"rules": [{"site": "warp-core"}]})").ok());
  EXPECT_FALSE(FaultPlanFromJson(R"({"rules": [{"trigger_on": "soon"}]})").ok());
  EXPECT_FALSE(FaultPlanFromJson(R"({"seed": 1} trailing)").ok());
}

TEST(FaultPlanJsonTest, ParsedPlanDrivesTheInjectorLikeTheOriginal) {
  const char* doc = R"({"seed": 42, "rules": [{"site": "boot-initcall",
      "trigger_on": 1, "period": 1, "probability": 0, "max_fires": 2}]})";
  auto plan = FaultPlanFromJson(doc);
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan);
  int fires = 0;
  for (int n = 0; n < 10; ++n) {
    fires += injector.Check(FaultSite::kBootInitcall) ? 1 : 0;
  }
  EXPECT_EQ(fires, 2);  // max_fires caps the always-firing rule.
}

}  // namespace
}  // namespace lupine

#include "src/util/units.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(Micros(3), 3'000);
  EXPECT_EQ(Millis(2), 2'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToMicros(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(23)), 23.0);
  EXPECT_DOUBLE_EQ(ToMiB(MiB(4)), 4.0);
}

TEST(UnitsTest, FormatSizePicksUnit) {
  EXPECT_EQ(FormatSize(512), "512 B");
  EXPECT_EQ(FormatSize(KiB(2)), "2.0 KB");
  EXPECT_EQ(FormatSize(MiB(4)), "4.0 MB");
}

TEST(UnitsTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(Micros(56)), "56.000 us");
  EXPECT_EQ(FormatDuration(Millis(23)), "23.00 ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.00 s");
}

}  // namespace
}  // namespace lupine

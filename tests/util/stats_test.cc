#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.Stddev(), 0.0);
}

TEST(AccumulatorTest, MeanMinMaxSum) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(AccumulatorTest, VarianceMatchesSampleFormula) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(v);
  }
  EXPECT_NEAR(acc.Variance(), 32.0 / 7.0, 1e-9);
}

TEST(PercentileTest, NearestRankInterpolation) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, MeanAndStddevHelpers) {
  std::vector<double> v = {10, 10, 10};
  EXPECT_DOUBLE_EQ(Mean(v), 10.0);
  EXPECT_DOUBLE_EQ(Stddev(v), 0.0);
}

TEST(StreamingPercentilesTest, ExactUnderCapacity) {
  StreamingPercentiles sp(100);
  for (int i = 1; i <= 100; ++i) {
    sp.Add(static_cast<double>(i));
  }
  EXPECT_EQ(sp.count(), 100u);
  EXPECT_EQ(sp.retained(), 100u);
  // Retained everything: quantiles match the exact Percentile helper.
  EXPECT_DOUBLE_EQ(sp.p50(), 50.5);
  EXPECT_NEAR(sp.p95(), 95.0, 0.1);
  EXPECT_NEAR(sp.p99(), 99.0, 0.1);
}

TEST(StreamingPercentilesTest, EmptyQuantilesAreZero) {
  StreamingPercentiles sp;
  EXPECT_EQ(sp.count(), 0u);
  EXPECT_EQ(sp.Quantile(50), 0.0);
}

TEST(StreamingPercentilesTest, DecimationBoundsMemoryAndStaysAccurate) {
  constexpr size_t kCapacity = 256;
  StreamingPercentiles sp(kCapacity);
  constexpr int kN = 100000;
  for (int i = 1; i <= kN; ++i) {
    sp.Add(static_cast<double>(i));
  }
  EXPECT_EQ(sp.count(), static_cast<size_t>(kN));
  EXPECT_LE(sp.retained(), kCapacity);
  EXPECT_GT(sp.retained(), kCapacity / 4);  // Decimation keeps, not discards.
  // Systematic sampling over a uniform ramp: quantiles stay within a couple
  // of strides of the true values.
  EXPECT_NEAR(sp.p50(), kN * 0.50, kN * 0.02);
  EXPECT_NEAR(sp.p95(), kN * 0.95, kN * 0.02);
  EXPECT_NEAR(sp.p99(), kN * 0.99, kN * 0.02);
}

TEST(StreamingPercentilesTest, DeterministicAcrossIdenticalStreams) {
  StreamingPercentiles a(64), b(64);
  for (int i = 0; i < 10000; ++i) {
    const double x = static_cast<double>((i * 37) % 1000);
    a.Add(x);
    b.Add(x);
  }
  EXPECT_EQ(a.retained(), b.retained());
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p95(), b.p95());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
}

TEST(StreamingPercentilesTest, TinyCapacityNeverOverflows) {
  StreamingPercentiles sp(1);
  for (int i = 0; i < 100; ++i) {
    sp.Add(static_cast<double>(i));
  }
  EXPECT_LE(sp.retained(), 1u);
  EXPECT_EQ(sp.count(), 100u);
}

}  // namespace
}  // namespace lupine

#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.Stddev(), 0.0);
}

TEST(AccumulatorTest, MeanMinMaxSum) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(AccumulatorTest, VarianceMatchesSampleFormula) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(v);
  }
  EXPECT_NEAR(acc.Variance(), 32.0 / 7.0, 1e-9);
}

TEST(PercentileTest, NearestRankInterpolation) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, MeanAndStddevHelpers) {
  std::vector<double> v = {10, 10, 10};
  EXPECT_DOUBLE_EQ(Mean(v), 10.0);
  EXPECT_DOUBLE_EQ(Stddev(v), 0.0);
}

}  // namespace
}  // namespace lupine

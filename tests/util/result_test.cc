#include "src/util/result.h"

#include <gtest/gtest.h>

namespace lupine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.err(), Err::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(Err::kNoSys, "epoll_create: function not implemented");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.err(), Err::kNoSys);
  EXPECT_EQ(s.ToString(), "ENOSYS: epoll_create: function not implemented");
}

TEST(StatusTest, ErrNamesMatchErrno) {
  EXPECT_STREQ(ErrName(Err::kNoEnt), "ENOENT");
  EXPECT_STREQ(ErrName(Err::kNoMem), "ENOMEM");
  EXPECT_STREQ(ErrName(Err::kAfNoSupport), "EAFNOSUPPORT");
  EXPECT_STREQ(ErrName(Err::kConnRefused), "ECONNREFUSED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Err::kNoEnt, "missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.err(), Err::kNoEnt);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = r.take();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, FromStatus) {
  Status bad(Err::kInval, "nope");
  Result<int> r{bad};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.err(), Err::kInval);
}

}  // namespace
}  // namespace lupine

#include "src/util/retry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "src/util/vclock.h"

namespace lupine {
namespace {

TEST(BackoffDelayTest, GrowsExponentiallyAndClampsToTheCap) {
  BackoffSpec spec;
  spec.initial = Millis(100);
  spec.multiplier = 2.0;
  spec.cap = Millis(400);
  spec.jitter = 0.0;  // Exact values.
  Prng prng(1);
  bool capped = false;
  EXPECT_EQ(BackoffDelay(spec, 1, prng, &capped), Millis(100));
  EXPECT_FALSE(capped);
  EXPECT_EQ(BackoffDelay(spec, 2, prng, &capped), Millis(200));
  EXPECT_FALSE(capped);
  EXPECT_EQ(BackoffDelay(spec, 3, prng, &capped), Millis(400));
  EXPECT_TRUE(capped);
  EXPECT_EQ(BackoffDelay(spec, 10, prng, &capped), Millis(400));
  EXPECT_TRUE(capped);
}

TEST(BackoffDelayTest, JitterStaysWithinTheFractionAndIsSeedDeterministic) {
  BackoffSpec spec;
  spec.jitter = 0.25;
  auto schedule = [&spec](uint64_t seed) {
    Prng prng(seed);
    std::vector<Nanos> delays;
    for (int f = 1; f <= 6; ++f) {
      const Nanos delay = BackoffDelay(spec, f, prng);
      delays.push_back(delay);
    }
    return delays;
  };
  const auto a = schedule(42);
  EXPECT_EQ(a, schedule(42));
  EXPECT_NE(a, schedule(43));
  Prng prng(7);
  for (int f = 1; f <= 6; ++f) {
    const double base = std::min(static_cast<double>(spec.initial) * std::pow(2.0, f - 1),
                                 static_cast<double>(spec.cap));
    const Nanos delay = BackoffDelay(spec, f, prng);
    EXPECT_GE(static_cast<double>(delay), base * 0.75 - 1);
    EXPECT_LE(static_cast<double>(delay), base * 1.25 + 1);
  }
}

TEST(RetryClassificationTest, TransientErrorsRetryDeterministicOnesDoNot) {
  EXPECT_TRUE(IsRetryableError(Status(Err::kIo, "disk hiccup")));
  EXPECT_TRUE(IsRetryableError(Status(Err::kTimedOut, "deadline")));
  EXPECT_TRUE(IsRetryableError(Status(Err::kFault, "ring-0 panic")));
  EXPECT_TRUE(IsRetryableError(Status(Err::kConnReset, "peer reset")));
  EXPECT_FALSE(IsRetryableError(Status(Err::kNoMem, "OOM at this size")));
  EXPECT_FALSE(IsRetryableError(Status(Err::kNoEnt, "no such app")));
  EXPECT_FALSE(IsRetryableError(Status(Err::kInval, "bad plan")));
  EXPECT_FALSE(IsRetryableError(Status(Err::kAccess, "quarantined")));
  EXPECT_FALSE(IsRetryableError(Status::Ok()));
}

TEST(RetrierTest, StopsAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Retrier retrier(policy);
  auto first = retrier.OnFailure(Status(Err::kIo, "boom"));
  EXPECT_TRUE(first.retry);
  EXPECT_GT(first.delay, 0);
  auto second = retrier.OnFailure(Status(Err::kIo, "boom"));
  EXPECT_TRUE(second.retry);
  auto third = retrier.OnFailure(Status(Err::kIo, "boom"));
  EXPECT_FALSE(third.retry);
  EXPECT_STREQ(third.reason, "attempts-exhausted");
  EXPECT_EQ(retrier.failures(), 3);
}

TEST(RetrierTest, PermanentErrorNeverRetries) {
  Retrier retrier(RetryPolicy{.max_attempts = 10});
  auto decision = retrier.OnFailure(Status(Err::kNoEnt, "no manifest"));
  EXPECT_FALSE(decision.retry);
  EXPECT_STREQ(decision.reason, "permanent-error");
}

TEST(RetrierTest, BudgetCapsTheSummedBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.backoff.initial = Millis(100);
  policy.backoff.jitter = 0.0;
  policy.total_budget = Millis(250);  // 100 + 200 > 250: second retry denied.
  Retrier retrier(policy);
  auto first = retrier.OnFailure(Status(Err::kIo, "boom"));
  EXPECT_TRUE(first.retry);
  EXPECT_EQ(first.delay, Millis(100));
  auto second = retrier.OnFailure(Status(Err::kIo, "boom"));
  EXPECT_FALSE(second.retry);
  EXPECT_STREQ(second.reason, "budget-exhausted");
  EXPECT_EQ(retrier.backoff_total(), Millis(100));
}

TEST(RetrierTest, SeedOffsetDecorrelatesTasksAndResetReplays) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  auto schedule = [&policy](uint64_t offset) {
    Retrier retrier(policy, offset);
    std::vector<Nanos> delays;
    for (int i = 0; i < 6; ++i) {
      auto decision = retrier.OnFailure(Status(Err::kIo, "boom"));
      if (!decision.retry) {
        break;
      }
      delays.push_back(decision.delay);
    }
    return delays;
  };
  EXPECT_EQ(schedule(3), schedule(3));  // Same task => same schedule.
  EXPECT_NE(schedule(3), schedule(4));  // Different tasks decorrelate.

  Retrier retrier(policy, 3);
  std::vector<Nanos> first, second;
  for (int i = 0; i < 4; ++i) {
    first.push_back(retrier.OnFailure(Status(Err::kIo, "boom")).delay);
  }
  retrier.Reset();
  for (int i = 0; i < 4; ++i) {
    second.push_back(retrier.OnFailure(Status(Err::kIo, "boom")).delay);
  }
  EXPECT_EQ(first, second);
}

TEST(DeadlineGuardTest, ExpiresAndChargesTheDeadlineNotTheStall) {
  VirtualClock clock;
  DeadlineGuard guard(clock, "boot", Millis(10));
  clock.Advance(Millis(4));
  EXPECT_FALSE(guard.expired());
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_EQ(guard.charged(), Millis(4));
  clock.Advance(Seconds(60));  // The stall.
  EXPECT_TRUE(guard.expired());
  EXPECT_EQ(guard.charged(), Millis(10));
  const Status status = guard.Check();
  EXPECT_EQ(status.err(), Err::kTimedOut);
  EXPECT_NE(status.ToString().find("boot"), std::string::npos);
}

TEST(DeadlineGuardTest, ZeroDeadlineNeverExpires) {
  VirtualClock clock;
  DeadlineGuard guard(clock, "boot", 0);
  clock.Advance(Seconds(3600));
  EXPECT_FALSE(guard.expired());
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_EQ(guard.charged(), Seconds(3600));
  EXPECT_TRUE(DeadlineGuard::CheckElapsed("build", 0, Seconds(999)).ok());
  EXPECT_FALSE(DeadlineGuard::CheckElapsed("build", Millis(1), Millis(2)).ok());
}

TEST(CircuitBreakerTest, TripsAtTheRatioAndCountsDenials) {
  BreakerPolicy policy;
  policy.window = 8;
  policy.min_samples = 4;
  policy.trip_ratio = 0.5;
  policy.fail_fast = true;
  policy.probe_after = 0;  // Stays open forever.
  CircuitBreaker breaker(policy);
  // 3 failures in 3 samples: below min_samples, no verdict yet.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.Record(false);
  }
  EXPECT_FALSE(breaker.tripped());
  EXPECT_TRUE(breaker.Allow());
  breaker.Record(false);  // 4/4 failures >= 0.5 => trip.
  EXPECT_TRUE(breaker.tripped());
  EXPECT_EQ(breaker.trips(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(breaker.Allow());
  }
  EXPECT_EQ(breaker.denied(), 5u);
  EXPECT_DOUBLE_EQ(breaker.failure_ratio(), 1.0);
}

TEST(CircuitBreakerTest, BestEffortCountsTripsButAllowsEverything) {
  BreakerPolicy policy;
  policy.min_samples = 2;
  policy.fail_fast = false;
  CircuitBreaker breaker(policy);
  breaker.Record(false);
  breaker.Record(false);
  EXPECT_TRUE(breaker.tripped());
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.denied(), 0u);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesTheBreakerOnSuccess) {
  BreakerPolicy policy;
  policy.min_samples = 2;
  policy.fail_fast = true;
  policy.probe_after = 3;
  CircuitBreaker breaker(policy);
  breaker.Record(false);
  breaker.Record(false);
  ASSERT_TRUE(breaker.tripped());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());  // The third denial turns into the probe.
  EXPECT_EQ(breaker.denied(), 2u);
  breaker.Record(true);  // Probe succeeded: breaker closes, window forgets.
  EXPECT_FALSE(breaker.tripped());
  EXPECT_TRUE(breaker.Allow());
  EXPECT_DOUBLE_EQ(breaker.failure_ratio(), 0.0);
}

TEST(CircuitBreakerStormTest, ConcurrentRecordsKeepExactCounts) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  BreakerPolicy policy;
  // Window holds every outcome, so the final ratio is exact (8000/16000)
  // whatever the interleaving; min_samples keeps it from ever tripping.
  policy.window = kThreads * kPerThread;
  policy.min_samples = kThreads * kPerThread + 1;
  CircuitBreaker breaker(policy);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&breaker] {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(breaker.Allow());
        breaker.Record(i % 2 == 0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(breaker.tripped());
  EXPECT_EQ(breaker.trips(), 0u);
  EXPECT_EQ(breaker.denied(), 0u);
  EXPECT_DOUBLE_EQ(breaker.failure_ratio(), 0.5);  // Window is even-sized.
}

}  // namespace
}  // namespace lupine

#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace lupine {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto future = pool.Submit([] { return std::string("still works"); });
  EXPECT_EQ(future.get(), "still works");
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // A two-way handshake: each task waits for the other's flag, so both
  // finish only if two workers run them at the same time.
  ThreadPool pool(2);
  std::atomic<bool> a{false};
  std::atomic<bool> b{false};
  auto fa = pool.Submit([&] {
    a.store(true);
    while (!b.load()) {
      std::this_thread::yield();
    }
  });
  auto fb = pool.Submit([&] {
    b.store(true);
    while (!a.load()) {
      std::this_thread::yield();
    }
  });
  fa.get();
  fb.get();
  SUCCEED();
}

TEST(ThreadPoolTest, ExceptionPropagatesToFuture) {
  ThreadPool pool(1);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsEverythingAlreadyAccepted) {
  // Drain semantics: nothing accepted is ever dropped. Every task queued
  // before Shutdown must run to completion before Shutdown returns.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    (void)pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(10));
      count.fetch_add(1);
    });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 50);
  EXPECT_TRUE(pool.stopped());
  pool.Shutdown();  // Idempotent: a second call is a no-op, not a crash.
}

TEST(ThreadPoolTest, SubmitAfterShutdownFailsLoudly) {
  // The old behavior silently enqueued onto a dead queue and the future
  // hung forever. Now the task is rejected: the future is valid but
  // broken, and get() throws instead of deadlocking.
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  auto future = pool.Submit([&ran] {
    ran.store(true);
    return 7;
  });
  ASSERT_TRUE(future.valid());
  try {
    future.get();
    FAIL() << "get() on a rejected submission must throw";
  } catch (const std::future_error& e) {
    EXPECT_EQ(e.code(), std::future_errc::broken_promise);
  }
  EXPECT_FALSE(ran.load());  // The rejected body never runs.
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) {
      (void)pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        count.fetch_add(1);
      });
    }
  }  // Destructor must run every queued task before joining.
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace lupine
